// Dedicated tests for the power/energy model (src/sim/power.{h,cc}) and
// the CpuCore utilization accounting that feeds it.
//
// The requests-per-Joule headline (paper §4.3) is only as good as these
// two pieces: NodePowerWatts turns mean CPU utilization into Watts
// (polling platforms draw active power flat; interrupt-driven platforms
// interpolate idle..active), and CpuCore::Utilization supplies that mean.
// A utilization above 1.0 — e.g. scheduled work retiring past the window
// end — would silently skew the interpolation for non-polling specs.

#include <gtest/gtest.h>

#include "sim/cpu_model.h"
#include "sim/power.h"
#include "sim/simulator.h"

namespace leed::sim {
namespace {

// ---------------------------------------------------------------------------
// NodePowerWatts: polling vs interrupt-driven
// ---------------------------------------------------------------------------

TEST(NodePowerTest, PollingDrawsActiveRegardlessOfLoad) {
  // Stingray JBOF operating point: 45 W idle, 52.5 W with all cores
  // busy-polling. A polling reactor never sleeps, so offered load does not
  // change the draw.
  PowerSpec stingray{45.0, 52.5, /*polling=*/true};
  EXPECT_DOUBLE_EQ(NodePowerWatts(stingray, 0.0), 52.5);
  EXPECT_DOUBLE_EQ(NodePowerWatts(stingray, 0.37), 52.5);
  EXPECT_DOUBLE_EQ(NodePowerWatts(stingray, 1.0), 52.5);
}

TEST(NodePowerTest, InterruptInterpolatesIdleToActive) {
  // Pi 3B+ operating point: 3.6 W idle, 4.2 W active, interrupt-driven.
  PowerSpec pi{3.6, 4.2, /*polling=*/false};
  EXPECT_DOUBLE_EQ(NodePowerWatts(pi, 0.0), 3.6);
  EXPECT_NEAR(NodePowerWatts(pi, 0.25), 3.75, 1e-12);
  EXPECT_NEAR(NodePowerWatts(pi, 0.5), 3.9, 1e-12);
  EXPECT_DOUBLE_EQ(NodePowerWatts(pi, 1.0), 4.2);
}

TEST(NodePowerTest, InterruptClampsOutOfRangeUtilization) {
  // Defense in depth: even if a caller hands in a bogus utilization the
  // draw must stay inside [idle_w, active_w].
  PowerSpec pi{3.6, 4.2, /*polling=*/false};
  EXPECT_DOUBLE_EQ(NodePowerWatts(pi, -0.5), 3.6);
  EXPECT_DOUBLE_EQ(NodePowerWatts(pi, 1.5), 4.2);
  EXPECT_DOUBLE_EQ(NodePowerWatts(pi, 1000.0), 4.2);
}

// ---------------------------------------------------------------------------
// NodeEnergyJoules: window math
// ---------------------------------------------------------------------------

TEST(NodeEnergyTest, IntegratesWattsOverWindow) {
  PowerSpec polling{45.0, 52.5, /*polling=*/true};
  // 52.5 W for 2 s = 105 J, independent of utilization.
  EXPECT_NEAR(NodeEnergyJoules(polling, 0.0, 2 * kSecond), 105.0, 1e-9);
  EXPECT_NEAR(NodeEnergyJoules(polling, 1.0, 2 * kSecond), 105.0, 1e-9);

  PowerSpec pi{3.6, 4.2, /*polling=*/false};
  // 3.9 W for 500 ms = 1.95 J.
  EXPECT_NEAR(NodeEnergyJoules(pi, 0.5, 500 * kMillisecond), 1.95, 1e-9);
  // Sub-millisecond windows keep full precision (ToSeconds is double).
  EXPECT_NEAR(NodeEnergyJoules(pi, 0.0, 250 * kMicrosecond), 3.6 * 250e-6,
              1e-12);
}

TEST(NodeEnergyTest, ZeroWindowIsZeroJoules) {
  PowerSpec polling{45.0, 52.5, /*polling=*/true};
  EXPECT_DOUBLE_EQ(NodeEnergyJoules(polling, 0.5, 0), 0.0);
}

// ---------------------------------------------------------------------------
// RequestsPerJoule: zero-joule guard
// ---------------------------------------------------------------------------

TEST(RequestsPerJouleTest, DividesRequestsByJoules) {
  EXPECT_NEAR(RequestsPerJoule(1050, 105.0), 10.0, 1e-12);
  EXPECT_NEAR(RequestsPerJoule(0, 105.0), 0.0, 1e-12);
}

TEST(RequestsPerJouleTest, GuardsZeroAndNegativeJoules) {
  // A zero-length measurement window must not divide by zero.
  EXPECT_EQ(RequestsPerJoule(100, 0.0), 0.0);
  EXPECT_EQ(RequestsPerJoule(100, -1.0), 0.0);
}

// ---------------------------------------------------------------------------
// CpuCore::Utilization: work retiring past the window end must not
// inflate utilization above 1.0 (regression tests for the overhang clamp).
// ---------------------------------------------------------------------------

TEST(CpuUtilizationTest, OverhangWorkClampsToWindow) {
  Simulator s;
  CpuCore core(s, 1.0);  // 1 GHz: 1 cycle = 1 ns
  // 2000 ns of work charged at t=0: the core is busy for the entire
  // 1000 ns window (and 1000 ns beyond it). Utilization over the window
  // is exactly 1.0 — not 2.0, which the pre-clamp accounting reported.
  core.Charge(2000);
  EXPECT_DOUBLE_EQ(core.Utilization(1000), 1.0);
  EXPECT_LE(core.Utilization(1), 1.0);
}

TEST(CpuUtilizationTest, MidWindowChargeCountsOnlyInWindowPortion) {
  Simulator s;
  CpuCore core(s, 1.0);
  s.Schedule(800, [] {});
  s.Run();  // advance to t=800
  core.Charge(400);  // busy 800..1200
  // Only 200 ns of that work falls inside [0, 1000).
  EXPECT_NEAR(core.Utilization(1000), 0.2, 1e-12);
}

TEST(CpuUtilizationTest, FullyRetiredWorkIsUnaffectedByClamp) {
  Simulator s;
  CpuCore core(s, 1.0);
  core.Run(500, [] {});
  s.Run();
  s.RunUntil(1000);
  EXPECT_NEAR(core.Utilization(1000), 0.5, 1e-12);
}

TEST(CpuUtilizationTest, NonPositiveWindowIsZero) {
  Simulator s;
  CpuCore core(s, 1.0);
  core.Charge(100);
  EXPECT_DOUBLE_EQ(core.Utilization(0), 0.0);
  EXPECT_DOUBLE_EQ(core.Utilization(-5), 0.0);
}

TEST(CpuUtilizationTest, MeanUtilizationFeedsInterruptPowerCorrectly) {
  // End-to-end shape of the original bug: one core overloaded past the
  // window end, the other idle. The mean must be 0.5 (core 0 clamps to
  // 1.0), giving the midpoint draw — not 1.5, which saturated the
  // interpolation at active_w.
  Simulator s;
  CpuModel cpu(s, 2, 1.0);
  cpu.core(0).Charge(3000);  // 3x the window
  PowerSpec pi{3.6, 4.2, /*polling=*/false};
  EXPECT_NEAR(cpu.MeanUtilization(1000), 0.5, 1e-12);
  EXPECT_NEAR(NodePowerWatts(pi, cpu.MeanUtilization(1000)), 3.9, 1e-12);
}

}  // namespace
}  // namespace leed::sim
