// Tests for the unified observability layer (leed::obs): registry
// semantics, hierarchical scopes, deterministic snapshot round-trips, the
// event trace ring, and the paper's NVMe access-count invariants (§3.3)
// observed through registry counters alone — the same counters CI gates on.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "log/circular_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/block_device.h"
#include "sim/cpu_model.h"
#include "sim/simulator.h"
#include "store/data_store.h"
#include "test_util.h"

namespace leed::obs {
namespace {

TEST(RegistryTest, CounterSemantics) {
  Registry reg;
  Counter* c = reg.GetCounter("ops");
  EXPECT_EQ(c->value(), 0u);
  c->Inc();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
  // Resolve-or-create is idempotent: same name, same handle.
  EXPECT_EQ(reg.GetCounter("ops"), c);
  EXPECT_EQ(reg.CounterValue("ops"), 42u);
  c->Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(reg.CounterValue("absent"), 0u);
}

TEST(RegistryTest, GaugeSemantics) {
  Registry reg;
  Gauge* g = reg.GetGauge("power_w");
  g->Set(17.5);
  EXPECT_DOUBLE_EQ(g->value(), 17.5);
  g->Add(-2.5);
  EXPECT_DOUBLE_EQ(g->value(), 15.0);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("power_w"), 15.0);
  g->Reset();
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
}

TEST(RegistryTest, HistogramSemantics) {
  Registry reg;
  Histogram* h = reg.GetHistogram("lat_us");
  h->Record(10.0);
  h->Record(20.0);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(reg.GetHistogram("lat_us"), h);
}

TEST(RegistryTest, KindCollisionThrows) {
  Registry reg;
  reg.GetCounter("x");
  EXPECT_THROW(reg.GetGauge("x"), std::logic_error);
  EXPECT_THROW(reg.GetHistogram("x"), std::logic_error);
  // Find* degrade to nullptr instead of throwing.
  EXPECT_EQ(reg.FindGauge("x"), nullptr);
  EXPECT_NE(reg.FindCounter("x"), nullptr);
}

TEST(RegistryTest, ResetPrefixRespectsDotBoundaries) {
  Registry reg;
  reg.GetCounter("node1.ops")->Add(5);
  reg.GetCounter("node10.ops")->Add(7);
  reg.ResetPrefix("node1");
  EXPECT_EQ(reg.CounterValue("node1.ops"), 0u);
  // "node10" is not inside the "node1" subtree.
  EXPECT_EQ(reg.CounterValue("node10.ops"), 7u);
  reg.GetCounter("node1.ops")->Add(3);
  reg.ResetAll();
  EXPECT_EQ(reg.CounterValue("node1.ops"), 0u);
  EXPECT_EQ(reg.CounterValue("node10.ops"), 0u);
}

TEST(RegistryTest, ScopeJoinsDotNames) {
  Registry reg;
  Scope node(&reg, "node3");
  Scope engine = node.Sub("engine");
  engine.GetCounter("executed")->Inc();
  EXPECT_EQ(reg.CounterValue("node3.engine.executed"), 1u);
  engine.ResetInstruments();
  EXPECT_EQ(reg.CounterValue("node3.engine.executed"), 0u);
  EXPECT_EQ(engine.prefix(), "node3.engine");
}

TEST(RegistryTest, SnapshotJsonRoundTrip) {
  Registry reg;
  reg.GetCounter("a.reads")->Add(123);
  reg.GetCounter("a.writes")->Add(456);
  reg.GetCounter("zero");
  reg.GetGauge("g")->Set(2.5);
  reg.GetHistogram("h")->Record(100.0);

  std::string json = reg.SnapshotJson();
  auto counters = ParseSnapshotCounters(json);
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(counters.at("a.reads"), 123u);
  EXPECT_EQ(counters.at("a.writes"), 456u);
  EXPECT_EQ(counters.at("zero"), 0u);

  // Deterministic: an identical registry snapshots byte-identically.
  EXPECT_EQ(json, reg.SnapshotJson());
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(TraceRingTest, DisabledRecordingIsANoOp) {
  TraceRing ring(8);
  ring.Record(100, TraceKind::kOpBegin, 0, 0, 1);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total_recorded(), 0u);
}

TEST(TraceRingTest, OverflowKeepsNewestAndCountsDrops) {
  TraceRing ring(8);
  ring.set_enabled(true);
  for (uint64_t i = 0; i < 20; ++i) {
    ring.Record(static_cast<SimTime>(i), TraceKind::kOpBegin, 1, 0, i);
  }
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.total_recorded(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  auto events = ring.Events();
  ASSERT_EQ(events.size(), 8u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, 12 + i) << "oldest-first order";
  }
  ring.Clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total_recorded(), 0u);
}

TEST(TraceRingTest, JsonCarriesKindNamesAndDrops) {
  TraceRing ring(2);
  ring.set_enabled(true);
  ring.Record(5, TraceKind::kChainHop, 2, 7, 99, 1);
  ring.Record(6, TraceKind::kCrrsShip, 2, 7, 100, 3);
  ring.Record(7, TraceKind::kOpEnd, 2, 0, 101, 0);
  std::string json = ring.Json();
  EXPECT_EQ(json.find("chain_hop"), std::string::npos);  // scrolled away
  EXPECT_NE(json.find("crrs_ship"), std::string::npos);
  EXPECT_NE(json.find("op_end"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 1"), std::string::npos);
}

// §3.3 invariant check through the registry only: the per-op NVMe access
// counts (GET 2 / PUT 3 / DEL 2) must be visible as "store0.ssd_reads" /
// "store0.ssd_writes" counter deltas, with no reference to StoreStats.
class ObsStoreTest : public ::testing::Test {
 protected:
  ObsStoreTest() : device_(sim_, 64ull << 20, 512), core_(sim_, 3.0) {}

  std::unique_ptr<store::DataStore> MakeStore() {
    key_log_ = std::make_unique<log::CircularLog>(device_, 0, 8 << 20);
    value_log_ = std::make_unique<log::CircularLog>(device_, 8 << 20, 8 << 20);
    store::LogSet home{0, key_log_.get(), value_log_.get()};
    store::StoreConfig cfg;
    cfg.store_id = 0;
    cfg.home_ssd = 0;
    cfg.num_segments = 64;
    cfg.bucket_size = 512;
    cfg.chain_bits = 4;
    cfg.metrics_registry = &reg_;
    return std::make_unique<store::DataStore>(sim_, core_, home, cfg);
  }

  uint64_t Reads() const { return reg_.CounterValue("store0.ssd_reads"); }
  uint64_t Writes() const { return reg_.CounterValue("store0.ssd_writes"); }

  Registry reg_;
  sim::Simulator sim_;
  sim::MemBlockDevice device_;
  sim::CpuCore core_;
  std::unique_ptr<log::CircularLog> key_log_;
  std::unique_ptr<log::CircularLog> value_log_;
};

TEST_F(ObsStoreTest, NvmeAccessInvariantsVisibleInRegistry) {
  auto ds = MakeStore();
  // Prime the bucket chain so the PUT below takes the common-case path.
  ASSERT_TRUE(testutil::SyncPut(sim_, *ds, "key-a",
                                testutil::TestValue(1, 64)).ok());

  uint64_t r0 = Reads(), w0 = Writes();
  ASSERT_TRUE(testutil::SyncPut(sim_, *ds, "key-a",
                                testutil::TestValue(2, 64)).ok());
  EXPECT_EQ(Reads() - r0, 1u);   // PUT: head bucket read...
  EXPECT_EQ(Writes() - w0, 2u);  // ...plus bucket + value appends = 3

  r0 = Reads(), w0 = Writes();
  ASSERT_TRUE(testutil::SyncGet(sim_, *ds, "key-a").ok());
  EXPECT_EQ(Reads() - r0, 2u);   // GET: bucket + value reads = 2
  EXPECT_EQ(Writes() - w0, 0u);

  r0 = Reads(), w0 = Writes();
  ASSERT_TRUE(testutil::SyncDel(sim_, *ds, "key-a").ok());
  EXPECT_EQ(Reads() - r0, 1u);   // DEL: bucket read...
  EXPECT_EQ(Writes() - w0, 1u);  // ...plus tombstone bucket append = 2

  // The op counters moved in lockstep and the legacy stats() view agrees
  // with the registry it is materialized from.
  EXPECT_EQ(reg_.CounterValue("store0.puts"), 2u);
  EXPECT_EQ(reg_.CounterValue("store0.gets"), 1u);
  EXPECT_EQ(reg_.CounterValue("store0.dels"), 1u);
  EXPECT_EQ(ds->stats().ssd_reads, reg_.CounterValue("store0.ssd_reads"));
  EXPECT_EQ(ds->stats().ssd_writes, reg_.CounterValue("store0.ssd_writes"));
}

TEST_F(ObsStoreTest, ReconstructedStoreStartsFromZero) {
  {
    auto ds = MakeStore();
    ASSERT_TRUE(testutil::SyncPut(sim_, *ds, "k",
                                  testutil::TestValue(1, 64)).ok());
    EXPECT_GT(reg_.CounterValue("store0.ssd_writes"), 0u);
  }
  // A new store under the same prefix resets its own subtree (sequential
  // tests and benches in one process must not inherit counts).
  auto ds2 = MakeStore();
  EXPECT_EQ(reg_.CounterValue("store0.ssd_writes"), 0u);
  EXPECT_EQ(reg_.CounterValue("store0.puts"), 0u);
}

}  // namespace
}  // namespace leed::obs
