// Tests for the parallel-simulation layers (docs/PARALLEL_SIM.md):
//
//   * Tier A: the seed-parallel sweep driver (sim/sweep.h) — index
//     coverage, pool reuse, and the jobs=1 serial-oracle contract;
//   * Tier B: the conservative-lookahead ShardedRunner (sim/shard.h) —
//     byte-identical traces for every jobs value, lookahead clamping, and
//     window accounting at the horizon boundary;
//   * end to end: nemesis sweeps and full ClusterSim runs must produce
//     identical verdicts, histories, and metrics snapshots across
//     {--jobs, --sharded} variants — the unit-level form of CI's replay
//     gate.
//
// Wall-clock speedup is deliberately NOT asserted here: these tests run on
// arbitrary (possibly single-core) machines. The speedup gates live in CI,
// which pins its runner shape.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "check/nemesis.h"
#include "common/rand.h"
#include "leed/cluster_sim.h"
#include "obs/metrics.h"
#include "sim/shard.h"
#include "sim/sweep.h"
#include "test_util.h"
#include "workload/ycsb.h"

namespace leed {
namespace {

// ---------------------------------------------------------------------------
// Tier A: sweep driver.
// ---------------------------------------------------------------------------

TEST(SweepTest, ResolveJobs) {
  EXPECT_EQ(sim::ResolveJobs(1), 1u);
  EXPECT_EQ(sim::ResolveJobs(3), 3u);
  EXPECT_EQ(sim::ResolveJobs(17), 17u);
  // 0 = "all host cores": whatever that resolves to, it is never zero.
  EXPECT_GE(sim::ResolveJobs(0), 1u);
}

TEST(SweepTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (uint32_t jobs : {1u, 2u, 4u}) {
    for (uint32_t count : {0u, 1u, 7u, 64u}) {
      std::vector<std::atomic<uint32_t>> hits(count);
      sim::ParallelFor(count, jobs, [&hits](uint32_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (uint32_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1u)
            << "jobs=" << jobs << " count=" << count << " index=" << i;
      }
    }
  }
}

TEST(SweepTest, SerialJobsRunInOrderOnCallingThread) {
  // jobs=1 is the replay/debug oracle: a plain loop, no threads, index
  // order. The trace vector is unsynchronized on purpose — TSan would
  // flag any worker thread touching it.
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<uint32_t> order;
  sim::ParallelFor(16, 1, [&](uint32_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 16u);
  for (uint32_t i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(SweepTest, TaskPoolIsReusableAcrossRounds) {
  sim::TaskPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  for (int round = 0; round < 20; ++round) {
    // Vary the count across rounds, including counts below the pool size
    // and empty rounds — workers must park and re-wake cleanly.
    const uint32_t count = static_cast<uint32_t>(round % 5) * 7;
    std::atomic<uint64_t> sum{0};
    pool.Run(count, [&sum](uint32_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), static_cast<uint64_t>(count) * (count + 1) / 2)
        << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Tier B: ShardedRunner.
// ---------------------------------------------------------------------------

// A shard-pure workload: each shard re-arms its own chain of events and
// every third firing posts a cross-shard event to its neighbour. All state
// a callback touches belongs to the shard the callback runs on.
struct ShardScript {
  sim::ShardedRunner* runner = nullptr;
  std::vector<ShardScript>* all = nullptr;
  uint32_t shard = 0;
  uint32_t remaining = 0;
  Rng rng{0};
  uint32_t seq = 0;
  std::vector<std::pair<SimTime, uint32_t>> trace;

  void Arm() {
    runner->shard(shard).Schedule(
        static_cast<SimTime>(1 + rng.NextBounded(64)), [this] { Fire(); });
  }
  void Fire() {
    sim::Simulator& sim = runner->shard(shard);
    trace.emplace_back(sim.Now(), seq);
    ++seq;
    if (seq % 3 == 0) {
      const uint32_t dst = (shard + 1) % runner->num_shards();
      ShardScript* target = &(*all)[dst];
      const uint32_t tag = 1000u * (shard + 1) + seq;
      // Offsets straddle the lookahead: short ones exercise the clamp,
      // long ones land in a later window untouched.
      const SimTime off = 5 + static_cast<SimTime>(rng.NextBounded(128));
      runner->Post(shard, dst, sim.Now() + off, [target, tag] {
        target->trace.emplace_back(
            target->runner->shard(target->shard).Now(), tag);
      });
    }
    if (--remaining > 0) Arm();
  }
};

struct ScriptOutcome {
  std::vector<std::vector<std::pair<SimTime, uint32_t>>> traces;
  uint64_t windows = 0;
  uint64_t posts = 0;
  uint64_t events = 0;
  SimTime end = 0;
};

ScriptOutcome RunShardScript(uint32_t jobs, uint64_t seed) {
  constexpr uint32_t kShards = 4;
  sim::ShardedRunner runner(kShards, /*lookahead=*/50, jobs);
  // Fixed size up front: callbacks capture element addresses.
  std::vector<ShardScript> scripts(kShards);
  for (uint32_t s = 0; s < kShards; ++s) {
    scripts[s].runner = &runner;
    scripts[s].all = &scripts;
    scripts[s].shard = s;
    scripts[s].remaining = 200;
    scripts[s].rng.Seed(seed + s);
    scripts[s].Arm();
  }
  ScriptOutcome out;
  out.end = runner.Run();
  out.windows = runner.windows();
  out.posts = runner.posts_delivered();
  out.events = runner.events_executed();
  for (auto& sc : scripts) out.traces.push_back(std::move(sc.trace));
  return out;
}

TEST(ShardedRunnerTest, IdenticalForEveryJobsValue) {
  const uint64_t seed = testutil::TestSeed(0x5ead);
  const ScriptOutcome serial = RunShardScript(1, seed);
  ASSERT_GT(serial.events, 800u);  // 4 shards x 200 self-events + posts
  ASSERT_GT(serial.posts, 0u);
  for (uint32_t jobs : {2u, 4u}) {
    const ScriptOutcome par = RunShardScript(jobs, seed);
    EXPECT_EQ(par.traces, serial.traces) << "jobs=" << jobs;
    EXPECT_EQ(par.windows, serial.windows) << "jobs=" << jobs;
    EXPECT_EQ(par.posts, serial.posts) << "jobs=" << jobs;
    EXPECT_EQ(par.events, serial.events) << "jobs=" << jobs;
    EXPECT_EQ(par.end, serial.end) << "jobs=" << jobs;
  }
}

TEST(ShardedRunnerTest, LookaheadClampsAndWindowsAccount) {
  sim::ShardedRunner runner(2, /*lookahead=*/100, 1);
  std::vector<std::pair<SimTime, int>> got;
  auto record = [&got, &runner](int tag) {
    return [&got, &runner, tag] {
      got.emplace_back(runner.shard(1).Now(), tag);
    };
  };
  // Bootstrap: shard 0 wakes at t=10 and posts three events to shard 1 —
  // one inside the window (must clamp to its end), one exactly at the
  // horizon, one a full window later.
  runner.Post(0, 0, 10, [&runner, &record] {
    const SimTime now = runner.shard(0).Now();  // 10; window end is 110
    runner.Post(0, 1, now + 40, record(1));     // 50 -> clamps to 110
    runner.Post(0, 1, 110, record(2));          // exactly the horizon
    runner.Post(0, 1, 200, record(3));          // next window
  });
  runner.Run();
  const std::vector<std::pair<SimTime, int>> expected = {
      {110, 1}, {110, 2}, {200, 3}};
  EXPECT_EQ(got, expected);
  // Window 1 runs shard 0's t=10 event; window 2 (opening at t=110) runs
  // all three deliveries — 200 < 110 + 100 + lookahead slack.
  EXPECT_EQ(runner.windows(), 2u);
  // Bootstrap post + the three cross-shard deliveries.
  EXPECT_EQ(runner.posts_delivered(), 4u);
  EXPECT_EQ(runner.events_executed(), 4u);
}

TEST(ShardedRunnerTest, SameInstantPostsMergeInSourceFifoOrder) {
  // Two sources post to the same destination at the same instant: the
  // merge must order by (when, src, FIFO-within-src), never by thread
  // scheduling. With when equal, src 0's posts land before src 1's.
  for (uint32_t jobs : {1u, 3u}) {
    sim::ShardedRunner runner(3, /*lookahead=*/10, jobs);
    std::vector<int> order;
    runner.Post(0, 2, 100, [&order] { order.push_back(1); });
    runner.Post(0, 2, 100, [&order] { order.push_back(2); });
    runner.Post(1, 2, 100, [&order] { order.push_back(3); });
    runner.Post(1, 2, 100, [&order] { order.push_back(4); });
    runner.Run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4})) << "jobs=" << jobs;
  }
}

// ---------------------------------------------------------------------------
// End to end: the replay-gate property at unit-test scale.
// ---------------------------------------------------------------------------

std::string Slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << "missing " << path;
  if (!f) return {};
  std::string out;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// Nemesis sweeps must produce identical per-seed results and identical
// history bytes for every {jobs, sharded} combination. "crash" covers
// crash/restart faults spanning shards; "churn" covers join/leave
// membership churn (vnode moves cancel and re-arm timers across shards).
TEST(NemesisParallelTest, JobsAndShardingAreByteIdentical) {
  for (const std::string& plan : {std::string("crash"), std::string("churn")}) {
    struct Variant {
      uint32_t jobs;
      bool sharded;
    };
    const Variant variants[] = {{1, false}, {2, false}, {1, true}, {2, true}};

    std::vector<check::NemesisResult> results;
    std::vector<std::string> histories;
    for (const Variant& v : variants) {
      check::NemesisOptions opt;
      opt.base_seed = 7;
      opt.seeds = 2;
      opt.plan = plan;
      opt.num_keys = 8;
      opt.num_clients = 2;
      opt.ops_per_client = 60;
      opt.run_for = 120 * kMillisecond;
      opt.jobs = v.jobs;
      opt.sharded = v.sharded;
      opt.history_out = std::string(testing::TempDir()) + "/nemesis_" + plan +
                        "_j" + std::to_string(v.jobs) +
                        (v.sharded ? "_sharded" : "_serial") + ".history";
      results.push_back(check::RunNemesisSweep(opt));
      histories.push_back(Slurp(opt.history_out));
      ASSERT_FALSE(histories.back().empty());
    }

    const check::NemesisResult& base = results[0];
    ASSERT_EQ(base.seeds.size(), 2u);
    for (size_t v = 1; v < results.size(); ++v) {
      const check::NemesisResult& r = results[v];
      ASSERT_EQ(r.seeds.size(), base.seeds.size()) << "variant " << v;
      for (size_t i = 0; i < base.seeds.size(); ++i) {
        EXPECT_EQ(r.seeds[i].seed, base.seeds[i].seed);
        EXPECT_EQ(r.seeds[i].verdict, base.seeds[i].verdict)
            << "plan=" << plan << " variant=" << v << " seed index " << i;
        EXPECT_EQ(r.seeds[i].ops, base.seeds[i].ops);
        EXPECT_EQ(r.seeds[i].completed, base.seeds[i].completed);
        EXPECT_EQ(r.seeds[i].steps, base.seeds[i].steps);
        EXPECT_EQ(r.seeds[i].violations.size(), base.seeds[i].violations.size());
      }
      EXPECT_EQ(r.violating_seeds, base.violating_seeds);
      EXPECT_EQ(r.inconclusive_seeds, base.inconclusive_seeds);
      EXPECT_EQ(histories[v], histories[0])
          << "plan=" << plan << " variant " << v
          << ": history bytes diverged from the serial oracle";
    }
  }
}

// A full ClusterSim run with the sharded event loop must match the default
// loop byte for byte: same completion counts, same simulator event count,
// same metrics snapshot from an injected per-run registry.
TEST(ShardedClusterTest, ShardedRunMatchesSerialRun) {
  auto run = [](bool sharded) {
    obs::Registry registry;
    ClusterConfig cfg;
    cfg.num_nodes = 3;
    cfg.num_clients = 2;
    cfg.seed = 0xabc;
    cfg.sharded = sharded;
    cfg.node.platform = sim::StingrayJbof();
    cfg.node.stack = StackKind::kLeed;
    cfg.node.crrs = true;
    cfg.node.metrics_registry = &registry;
    cfg.node.engine.ssd_count = 2;
    cfg.node.engine.stores_per_ssd = 2;
    cfg.node.engine.ssd = sim::Dct983Spec();
    cfg.node.engine.ssd.capacity_bytes = 1ull << 30;
    cfg.node.engine.store_template.num_segments = 512;
    cfg.node.engine.store_template.bucket_size = 512;
    cfg.client.crrs_reads = true;
    cfg.client.stores_per_ssd = 2;
    cfg.control_plane.replication_factor = 3;

    ClusterSim cluster(std::move(cfg));
    cluster.Bootstrap();
    cluster.Preload(64, 64);

    workload::YcsbConfig wc;
    wc.mix = workload::Mix::kB;
    wc.num_keys = 64;
    wc.value_size = 64;
    wc.zipf_theta = 0.9;
    wc.seed = 0x5eed;
    workload::YcsbGenerator gen(wc);

    ClusterSim::DriveOptions opt;
    opt.concurrency_per_client = 8;
    opt.warmup = 10 * kMillisecond;
    opt.duration = 60 * kMillisecond;
    RunResult r = cluster.Run(gen, opt);

    struct Outcome {
      uint64_t completed;
      uint64_t errors;
      uint64_t events;
      std::string metrics;
    };
    return Outcome{r.completed, r.errors,
                   cluster.simulator().events_executed(),
                   registry.SnapshotJson()};
  };

  const auto serial = run(false);
  const auto sharded = run(true);
  ASSERT_GT(serial.completed, 0u);
  EXPECT_EQ(sharded.completed, serial.completed);
  EXPECT_EQ(sharded.errors, serial.errors);
  EXPECT_EQ(sharded.events, serial.events);
  EXPECT_EQ(sharded.metrics, serial.metrics);
}

}  // namespace
}  // namespace leed
