// Tests for the FAWN and KVell baseline stores and the B+-tree index.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "baselines/btree_index.h"
#include "baselines/executor.h"
#include "baselines/fawn_store.h"
#include "baselines/kvell_store.h"
#include "common/rand.h"
#include "sim/block_device.h"
#include "sim/cpu_model.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace leed::baselines {
namespace {

using testutil::SyncDel;
using testutil::SyncGet;
using testutil::SyncPut;
using testutil::TestValue;

// ---------------------------------------------------------------------------
// B+-tree
// ---------------------------------------------------------------------------

TEST(BTreeTest, InsertFindErase) {
  BTreeIndex tree;
  EXPECT_TRUE(tree.Insert("b", {2, 0}));
  EXPECT_TRUE(tree.Insert("a", {1, 0}));
  EXPECT_FALSE(tree.Insert("a", {9, 0}));  // overwrite, not new
  ASSERT_TRUE(tree.Find("a").has_value());
  EXPECT_EQ(tree.Find("a")->slot, 9u);
  EXPECT_FALSE(tree.Find("c").has_value());
  EXPECT_TRUE(tree.Erase("a"));
  EXPECT_FALSE(tree.Erase("a"));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BTreeTest, ManyKeysSplitAndStaySorted) {
  BTreeIndex tree;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%06d", (i * 2654435761u) % kN);
    tree.Insert(buf, {static_cast<uint64_t>(i), 0});
  }
  EXPECT_GT(tree.height(), 2);
  EXPECT_TRUE(tree.CheckInvariants());
  std::string prev;
  size_t visited = 0;
  tree.Visit([&](std::string_view k, BTreeIndex::Location) {
    if (visited > 0) {
      EXPECT_LT(prev, std::string(k));
    }
    prev = std::string(k);
    ++visited;
  });
  EXPECT_EQ(visited, tree.size());
}

TEST(BTreeTest, RandomizedAgainstStdMap) {
  BTreeIndex tree;
  std::map<std::string, uint64_t> ref;
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    std::string key = "key" + std::to_string(rng.NextBounded(3000));
    switch (rng.NextBounded(3)) {
      case 0: {
        uint64_t v = rng.Next();
        tree.Insert(key, {v, 0});
        ref[key] = v;
        break;
      }
      case 1: {
        auto found = tree.Find(key);
        auto rit = ref.find(key);
        EXPECT_EQ(found.has_value(), rit != ref.end());
        if (found && rit != ref.end()) {
          EXPECT_EQ(found->slot, rit->second);
        }
        break;
      }
      case 2:
        EXPECT_EQ(tree.Erase(key), ref.erase(key) > 0);
        break;
    }
  }
  EXPECT_EQ(tree.size(), ref.size());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, EraseDownToEmpty) {
  BTreeIndex tree;
  for (int i = 0; i < 1000; ++i) tree.Insert("k" + std::to_string(i), {0, 0});
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(tree.Erase("k" + std::to_string(i)));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Find("k1").has_value());
  EXPECT_TRUE(tree.Insert("fresh", {1, 0}));
}

// ---------------------------------------------------------------------------
// FAWN store
// ---------------------------------------------------------------------------

class FawnTest : public ::testing::Test {
 protected:
  FawnTest() : device_(sim_, 64 << 20, 512), core_(sim_, 1.4) {}

  std::unique_ptr<FawnStore> MakeStore(FawnConfig cfg = {}) {
    return std::make_unique<FawnStore>(sim_, core_, device_, 0, 16 << 20, cfg);
  }

  sim::Simulator sim_;
  sim::MemBlockDevice device_;
  sim::CpuCore core_;
};

TEST_F(FawnTest, PutGetDelRoundTrip) {
  auto st = MakeStore();
  ASSERT_TRUE(SyncPut(sim_, *st, "k", TestValue(1, 100)).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(SyncGet(sim_, *st, "k", &out).ok());
  EXPECT_EQ(out, TestValue(1, 100));
  ASSERT_TRUE(SyncDel(sim_, *st, "k").ok());
  EXPECT_TRUE(SyncGet(sim_, *st, "k").IsNotFound());
}

TEST_F(FawnTest, SingleSsdAccessPerOp) {
  auto st = MakeStore();
  ASSERT_TRUE(SyncPut(sim_, *st, "k", TestValue(1, 100)).ok());
  auto r0 = st->stats().ssd_reads;
  auto w0 = st->stats().ssd_writes;
  ASSERT_TRUE(SyncGet(sim_, *st, "k").ok());
  EXPECT_EQ(st->stats().ssd_reads - r0, 1u);   // FAWN's signature 1-IO GET
  ASSERT_TRUE(SyncPut(sim_, *st, "k", TestValue(2, 100)).ok());
  EXPECT_EQ(st->stats().ssd_writes - w0, 1u);  // 1-IO PUT
}

TEST_F(FawnTest, OverwriteReturnsNewest) {
  auto st = MakeStore();
  ASSERT_TRUE(SyncPut(sim_, *st, "k", TestValue(1, 50)).ok());
  ASSERT_TRUE(SyncPut(sim_, *st, "k", TestValue(2, 70)).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(SyncGet(sim_, *st, "k", &out).ok());
  EXPECT_EQ(out, TestValue(2, 70));
}

TEST_F(FawnTest, QueueSerializesAtMaxInflight) {
  FawnConfig cfg;
  cfg.max_inflight = 1;
  auto st = MakeStore(cfg);
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    st->Put("k" + std::to_string(i), TestValue(i, 32), [&](Status s) {
      EXPECT_TRUE(s.ok());
      ++done;
    });
  }
  EXPECT_GT(st->queue_depth(), 0u);
  sim_.Run();
  EXPECT_EQ(done, 10);
}

TEST_F(FawnTest, CleaningReclaimsAndPreservesData) {
  FawnConfig cfg;
  cfg.max_inflight = 4;
  cfg.compaction_threshold = 0.5;
  cfg.compaction_chunk = 64 * 1024;
  auto st = std::make_unique<FawnStore>(sim_, core_, device_, 0, 64 << 10, cfg);
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 16; ++i) {
      Status s = SyncPut(sim_, *st, "key" + std::to_string(i), TestValue(round, 128));
      ASSERT_TRUE(s.ok()) << "round " << round << ": " << s.ToString();
    }
  }
  sim_.Run();
  EXPECT_GT(st->stats().cleanings, 0u);
  for (int i = 0; i < 16; ++i) {
    std::vector<uint8_t> out;
    ASSERT_TRUE(SyncGet(sim_, *st, "key" + std::to_string(i), &out).ok());
    EXPECT_EQ(out, TestValue(39, 128));
  }
}

// ---------------------------------------------------------------------------
// KVell store
// ---------------------------------------------------------------------------

class KvellTest : public ::testing::Test {
 protected:
  KvellTest() : device_(sim_, 64 << 20, 512), core_(sim_, 3.0) {}

  std::unique_ptr<KvellStore> MakeStore(KvellConfig cfg = {}) {
    return std::make_unique<KvellStore>(sim_, core_, device_, 0, 32 << 20, cfg);
  }

  sim::Simulator sim_;
  sim::MemBlockDevice device_;
  sim::CpuCore core_;
};

TEST_F(KvellTest, PutGetDelRoundTrip) {
  auto st = MakeStore();
  ASSERT_TRUE(SyncPut(sim_, *st, "k", TestValue(3, 300)).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(SyncGet(sim_, *st, "k", &out).ok());
  EXPECT_EQ(out, TestValue(3, 300));
  ASSERT_TRUE(SyncDel(sim_, *st, "k").ok());
  EXPECT_TRUE(SyncGet(sim_, *st, "k").IsNotFound());
}

TEST_F(KvellTest, InPlaceUpdateReusesSlot) {
  auto st = MakeStore();
  ASSERT_TRUE(SyncPut(sim_, *st, "k", TestValue(1, 200)).ok());
  uint64_t slots_after_first = st->stats().slots_allocated;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(SyncPut(sim_, *st, "k", TestValue(i, 200)).ok());
  }
  EXPECT_EQ(st->stats().slots_allocated, slots_after_first);  // no new slots
  std::vector<uint8_t> out;
  ASSERT_TRUE(SyncGet(sim_, *st, "k", &out).ok());
  EXPECT_EQ(out, TestValue(4, 200));
}

TEST_F(KvellTest, DeleteRecyclesSlot) {
  auto st = MakeStore();
  ASSERT_TRUE(SyncPut(sim_, *st, "a", TestValue(1, 100)).ok());
  ASSERT_TRUE(SyncDel(sim_, *st, "a").ok());
  ASSERT_TRUE(SyncPut(sim_, *st, "b", TestValue(2, 100)).ok());
  EXPECT_EQ(st->stats().slots_recycled, 1u);
  EXPECT_EQ(st->slots_in_use(), 1u);
}

TEST_F(KvellTest, ObjectBiggerThanSlabRejected) {
  KvellConfig cfg;
  cfg.slot_bytes = 512;
  auto st = MakeStore(cfg);
  Status s = SyncPut(sim_, *st, "big", TestValue(1, 4096));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(KvellTest, ManyKeysSurviveChurn) {
  auto st = MakeStore();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(SyncPut(sim_, *st, "key" + std::to_string(i), TestValue(i, 120)).ok());
  }
  for (int i = 0; i < 200; i += 2) {
    ASSERT_TRUE(SyncDel(sim_, *st, "key" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 200; ++i) {
    std::vector<uint8_t> out;
    Status s = SyncGet(sim_, *st, "key" + std::to_string(i), &out);
    if (i % 2 == 0) {
      EXPECT_TRUE(s.IsNotFound()) << i;
    } else {
      ASSERT_TRUE(s.ok()) << i;
      EXPECT_EQ(out, TestValue(i, 120));
    }
  }
  EXPECT_TRUE(st->index().CheckInvariants());
}

// ---------------------------------------------------------------------------
// BaselineExecutor
// ---------------------------------------------------------------------------

TEST(BaselineExecutorTest, RoutesThroughStorageServiceInterface) {
  sim::Simulator sim;
  sim::CpuModel cpu(sim, 4, 1.4);
  BaselineConfig cfg;
  cfg.kind = BaselineKind::kFawn;
  cfg.ssd_count = 1;
  cfg.stores_per_ssd = 2;
  cfg.ssd = sim::PiSdCardSpec();
  cfg.ssd.latency_jitter = 0;
  cfg.ssd.slow_io_prob = 0;
  BaselineExecutor exec(sim, cpu, cfg, 7);
  EXPECT_EQ(exec.num_stores(), 2u);
  EXPECT_EQ(exec.ssd_of_store(1), 0u);

  bool done = false;
  engine::Request req;
  req.type = engine::OpType::kPut;
  req.key = "hello";
  req.value = testutil::TestValue(1, 64);
  req.store_id = 1;
  req.callback = [&](Status st, std::vector<uint8_t>, engine::ResponseMeta meta) {
    EXPECT_TRUE(st.ok());
    EXPECT_GT(meta.available_tokens, 0u);
    done = true;
  };
  exec.Submit(std::move(req));
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(exec.stats().completed, 1u);
}

TEST(BaselineExecutorTest, KvellKindUsesBTreeStores) {
  sim::Simulator sim;
  sim::CpuModel cpu(sim, 8, 2.3);
  BaselineConfig cfg;
  cfg.kind = BaselineKind::kKvell;
  cfg.ssd_count = 2;
  cfg.stores_per_ssd = 2;
  cfg.ssd = sim::Dct983Spec();
  cfg.ssd.capacity_bytes = 1ull << 30;
  cfg.kvell.ipc_factor = 2.6;
  BaselineExecutor exec(sim, cpu, cfg, 7);

  bool done = false;
  engine::Request put;
  put.type = engine::OpType::kPut;
  put.key = "k";
  put.value = testutil::TestValue(2, 256);
  put.store_id = 3;
  put.callback = [&](Status st, std::vector<uint8_t>, engine::ResponseMeta) {
    EXPECT_TRUE(st.ok());
    done = true;
  };
  exec.Submit(std::move(put));
  sim.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(exec.kvell(3).index().size(), 1u);
}

}  // namespace
}  // namespace leed::baselines
