// Property-style parameterized sweeps (TEST_P): invariants that must hold
// across the configuration space, not just at hand-picked points.
//
//  * DataStore: read-your-writes + newest-wins + compaction preserves data,
//    across bucket sizes, value sizes, and segment counts.
//  * DataStore shadow model: a random PUT/DEL/GET stream checked op-by-op
//    against an in-memory oracle, with logs small enough that the stream
//    laps them (circular-log wraparound) and compaction runs throughout.
//  * CircularLog: contents survive arbitrary wrap patterns across region
//    and entry-size combinations.
//  * Histogram: percentile monotonicity and bounds across distributions.
//  * SpscRing: FIFO + exactly-once across capacities.
//  * Zipf: samples in range and monotone concentration across theta.

#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <unordered_map>

#include "common/histogram.h"
#include "common/rand.h"
#include "common/zipf.h"
#include "engine/spsc_ring.h"
#include "log/circular_log.h"
#include "sim/block_device.h"
#include "sim/cpu_model.h"
#include "sim/simulator.h"
#include "store/data_store.h"
#include "test_util.h"

namespace leed {
namespace {

// ---------------------------------------------------------------------------
// DataStore sweep: (bucket_size, value_size, num_segments)
// ---------------------------------------------------------------------------

using StoreParam = std::tuple<uint32_t, uint32_t, uint32_t>;

class StoreSweep : public ::testing::TestWithParam<StoreParam> {
 protected:
  StoreSweep() : device_(sim_, 128ull << 20, 512), core_(sim_, 3.0) {}

  sim::Simulator sim_;
  sim::MemBlockDevice device_;
  sim::CpuCore core_;
};

TEST_P(StoreSweep, ReadYourWritesAndCompactionPreserves) {
  auto [bucket_size, value_size, num_segments] = GetParam();
  log::CircularLog key_log(device_, 0, 32ull << 20);
  log::CircularLog value_log(device_, 32ull << 20, 32ull << 20);
  store::StoreConfig cfg;
  cfg.bucket_size = bucket_size;
  cfg.num_segments = num_segments;
  cfg.chain_bits = 5;
  cfg.compaction_threshold = 1.1;  // manual
  store::DataStore ds(sim_, core_, store::LogSet{0, &key_log, &value_log}, cfg);

  const int kKeys = 120;
  std::map<std::string, std::vector<uint8_t>> truth;
  Rng rng(bucket_size * 31 + value_size);
  // Two rounds of writes (second round overwrites half) + some deletes.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < kKeys; ++i) {
      if (round == 1 && i % 2 == 0) continue;  // half keep round-0 values
      std::string key = "k" + std::to_string(i);
      auto value = testutil::TestValue(round * 1000 + i, value_size);
      ASSERT_TRUE(testutil::SyncPut(sim_, ds, key, value).ok())
          << key << " bucket=" << bucket_size;
      truth[key] = value;
    }
  }
  for (int i = 0; i < kKeys; i += 7) {
    std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(testutil::SyncDel(sim_, ds, key).ok());
    truth.erase(key);
  }

  auto verify = [&](const char* when) {
    for (int i = 0; i < kKeys; ++i) {
      std::string key = "k" + std::to_string(i);
      std::vector<uint8_t> out;
      Status st = testutil::SyncGet(sim_, ds, key, &out);
      auto it = truth.find(key);
      if (it == truth.end()) {
        EXPECT_TRUE(st.IsNotFound()) << when << " " << key;
      } else {
        ASSERT_TRUE(st.ok()) << when << " " << key << ": " << st.ToString();
        EXPECT_EQ(out, it->second) << when << " " << key;
      }
    }
  };
  verify("before compaction");

  for (int pass = 0; pass < 3; ++pass) {
    bool kd = false, vd = false;
    ds.ForceKeyCompaction([&](Status) { kd = true; });
    testutil::RunUntilFlag(sim_, kd);
    ds.ForceValueCompaction([&](Status) { vd = true; });
    testutil::RunUntilFlag(sim_, vd);
  }
  verify("after compaction");
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, StoreSweep,
    ::testing::Combine(::testing::Values(256u, 512u, 4096u),   // bucket size
                       ::testing::Values(16u, 256u, 1024u),    // value size
                       ::testing::Values(1u, 16u, 256u)),      // segments
    [](const ::testing::TestParamInfo<StoreParam>& p) {
      return "b" + std::to_string(std::get<0>(p.param)) + "_v" +
             std::to_string(std::get<1>(p.param)) + "_s" +
             std::to_string(std::get<2>(p.param));
    });

// ---------------------------------------------------------------------------
// DataStore shadow model: random op stream vs an in-memory oracle
// ---------------------------------------------------------------------------

TEST(StoreShadowModel, RandomOpsMatchOracleThroughCompactionAndWrap) {
  sim::Simulator sim;
  sim::MemBlockDevice device(sim, 64ull << 20, 512);
  sim::CpuCore core(sim, 3.0);
  // Logs small enough that the op stream laps them several times — every
  // lap is a circular-log wraparound — with auto-compaction reclaiming
  // space underneath the whole run.
  constexpr uint64_t kRegion = 32 << 10;
  log::CircularLog key_log(device, 0, kRegion);
  log::CircularLog value_log(device, 8 << 20, kRegion);
  store::StoreConfig cfg;
  cfg.bucket_size = 512;
  cfg.num_segments = 8;
  cfg.chain_bits = 5;
  cfg.compaction_threshold = 0.60;
  store::DataStore ds(sim, core, store::LogSet{0, &key_log, &value_log}, cfg);

  const uint64_t seed = testutil::TestSeed(0x51ed);
  Rng rng(seed);
  std::unordered_map<std::string, std::vector<uint8_t>> oracle;
  constexpr int kKeys = 64;
  constexpr int kOps = 4000;
  uint64_t tag = 0;
  uint64_t value_bytes_written = 0;
  for (int i = 0; i < kOps; ++i) {
    std::string key = "sk" + std::to_string(rng.NextBounded(kKeys));
    const uint64_t roll = rng.NextBounded(1000);
    if (roll < 550) {
      auto value = testutil::TestValue(++tag, 16 + rng.NextBounded(120));
      value_bytes_written += value.size();
      ASSERT_TRUE(testutil::SyncPut(sim, ds, key, value).ok())
          << "op " << i << " seed " << seed;
      oracle[key] = std::move(value);
    } else if (roll < 700) {
      Status st = testutil::SyncDel(sim, ds, key);
      if (oracle.count(key)) {
        ASSERT_TRUE(st.ok()) << "op " << i << " seed " << seed << ": "
                             << st.ToString();
      } else {
        ASSERT_TRUE(st.ok() || st.IsNotFound())
            << "op " << i << " seed " << seed << ": " << st.ToString();
      }
      oracle.erase(key);
    } else {
      std::vector<uint8_t> out;
      Status st = testutil::SyncGet(sim, ds, key, &out);
      auto it = oracle.find(key);
      if (it == oracle.end()) {
        EXPECT_TRUE(st.IsNotFound()) << "op " << i << " seed " << seed;
      } else {
        ASSERT_TRUE(st.ok()) << "op " << i << " seed " << seed << ": "
                             << st.ToString();
        EXPECT_EQ(out, it->second) << "op " << i << " seed " << seed;
      }
    }
    if (i % 512 == 511) {
      // Forced passes on top of the threshold-triggered ones: the oracle
      // must hold across both compaction entry points.
      bool kd = false, vd = false;
      ds.ForceKeyCompaction([&](Status) { kd = true; });
      testutil::RunUntilFlag(sim, kd);
      ds.ForceValueCompaction([&](Status) { vd = true; });
      testutil::RunUntilFlag(sim, vd);
    }
  }
  // The stream must actually have lapped the value log, or the wraparound
  // claim in this test's name is vacuous.
  EXPECT_GT(value_bytes_written, 3 * kRegion);
  for (int k = 0; k < kKeys; ++k) {
    std::string key = "sk" + std::to_string(k);
    std::vector<uint8_t> out;
    Status st = testutil::SyncGet(sim, ds, key, &out);
    auto it = oracle.find(key);
    if (it == oracle.end()) {
      EXPECT_TRUE(st.IsNotFound()) << "final " << key << " seed " << seed;
    } else {
      ASSERT_TRUE(st.ok()) << "final " << key << " seed " << seed;
      EXPECT_EQ(out, it->second) << "final " << key << " seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// CircularLog sweep: (region_size, max_entry)
// ---------------------------------------------------------------------------

using LogParam = std::tuple<uint64_t, uint64_t>;

class LogSweep : public ::testing::TestWithParam<LogParam> {
 protected:
  LogSweep() : device_(sim_, 8 << 20, 512) {}
  sim::Simulator sim_;
  sim::MemBlockDevice device_;
};

TEST_P(LogSweep, SurvivesArbitraryWraps) {
  auto [region, max_entry] = GetParam();
  log::CircularLog log(device_, 1024, region);
  Rng rng(region ^ max_entry);
  std::deque<std::pair<uint64_t, std::vector<uint8_t>>> window;
  for (int i = 0; i < 300; ++i) {
    // An entry can never exceed the region itself.
    uint64_t size = 1 + rng.NextBounded(std::min(max_entry, region - 1));
    auto payload = testutil::TestValue(i, size);
    while (log.free_space() < size) {
      ASSERT_FALSE(window.empty());
      // Reclaim the oldest entry.
      uint64_t new_head = window.front().first + window.front().second.size();
      window.pop_front();
      ASSERT_TRUE(log.AdvanceHead(new_head).ok());
    }
    bool done = false;
    log::AppendResult res;
    log.Append(payload, [&](log::AppendResult r) {
      res = std::move(r);
      done = true;
    });
    testutil::RunUntilFlag(sim_, done);
    ASSERT_TRUE(res.status.ok());
    window.emplace_back(res.offset, std::move(payload));
  }
  for (auto& [offset, payload] : window) {
    bool done = false;
    log::ReadResult r;
    log.Read(offset, payload.size(), [&](log::ReadResult rr) {
      r = std::move(rr);
      done = true;
    });
    testutil::RunUntilFlag(sim_, done);
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.data, payload);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LogSweep,
    ::testing::Combine(::testing::Values(4096ull, 65536ull, 1048576ull),
                       ::testing::Values(100ull, 700ull, 5000ull)),
    [](const ::testing::TestParamInfo<LogParam>& p) {
      return "r" + std::to_string(std::get<0>(p.param)) + "_e" +
             std::to_string(std::get<1>(p.param));
    });

// ---------------------------------------------------------------------------
// Histogram percentile properties across distributions
// ---------------------------------------------------------------------------

class HistogramSweep : public ::testing::TestWithParam<int> {};

TEST_P(HistogramSweep, PercentilesMonotoneAndBounded) {
  Histogram h;
  Rng rng(GetParam());
  double lo = 1e18, hi = 0;
  for (int i = 0; i < 20000; ++i) {
    double v = 0;
    switch (GetParam()) {
      case 0:
        v = 1.0 + static_cast<double>(rng.NextBounded(1000));  // uniform
        break;
      case 1:
        v = rng.NextExponential(250.0) + 0.1;  // heavy tail
        break;
      case 2:
        v = (i % 100 == 0) ? 1e6 : 50.0;  // bimodal with outliers
        break;
      default:
        v = 42.0;  // constant
        break;
    }
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    h.Record(v);
  }
  double prev = 0;
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
    double p = h.Percentile(q);
    EXPECT_GE(p, prev) << "q=" << q;
    EXPECT_GE(p, lo * 0.99);
    EXPECT_LE(p, hi * 1.01);
    prev = p;
  }
  EXPECT_GE(h.Mean(), h.min());
  EXPECT_LE(h.Mean(), h.max());
}

INSTANTIATE_TEST_SUITE_P(Distributions, HistogramSweep, ::testing::Range(0, 4));

// ---------------------------------------------------------------------------
// SpscRing exactly-once FIFO across capacities
// ---------------------------------------------------------------------------

class RingSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(RingSweep, ExactlyOnceFifoUnderChurn) {
  engine::SpscRing<uint64_t> ring(GetParam());
  Rng rng(GetParam());
  uint64_t pushed = 0, popped = 0;
  for (int step = 0; step < 20000; ++step) {
    if (rng.NextBool(0.55)) {
      if (ring.TryPush(pushed + 0)) ++pushed;
    } else {
      auto v = ring.TryPop();
      if (v) {
        ASSERT_EQ(*v, popped);
        ++popped;
      }
    }
    ASSERT_LE(ring.Size(), ring.Capacity());
  }
  while (auto v = ring.TryPop()) {
    ASSERT_EQ(*v, popped);
    ++popped;
  }
  EXPECT_EQ(pushed, popped);
}

INSTANTIATE_TEST_SUITE_P(Capacities, RingSweep,
                         ::testing::Values(1, 2, 3, 8, 64, 1000));

// ---------------------------------------------------------------------------
// Zipf concentration monotone in theta
// ---------------------------------------------------------------------------

class ZipfSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSweep, SamplesInRangeAndTopShareMatchesZeta) {
  const double theta = GetParam();
  constexpr uint64_t kN = 50'000;
  ZipfGenerator gen(kN, theta, /*scramble=*/false);
  Rng rng(777);
  uint64_t top = 0;
  constexpr int kSamples = 120'000;
  for (int i = 0; i < kSamples; ++i) {
    uint64_t v = gen.Next(rng);
    ASSERT_LT(v, kN);
    if (v == 0) ++top;
  }
  if (theta > 0) {
    double expected = gen.TopItemProbability();
    EXPECT_NEAR(static_cast<double>(top) / kSamples, expected,
                std::max(0.002, expected * 0.15));
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfSweep,
                         ::testing::Values(0.0, 0.1, 0.5, 0.9, 0.99));

// ---------------------------------------------------------------------------
// RangeIndex shadow model: ordered view vs std::map oracle
// ---------------------------------------------------------------------------

TEST(RangeIndexShadowModel, OrderedViewMatchesOracleThroughCompactionSwapWrap) {
  sim::Simulator sim;
  sim::MemBlockDevice device(sim, 64ull << 20, 512);
  sim::MemBlockDevice donor_device(sim, 16ull << 20, 512);
  sim::CpuCore core(sim, 3.0);
  // Small logs so the stream laps them (circular-log wraparound) while
  // auto-compaction reclaims space; a donor log pair so a stretch of the
  // run goes through swapped segments and their merge-back relocations.
  constexpr uint64_t kRegion = 32 << 10;
  log::CircularLog key_log(device, 0, kRegion);
  log::CircularLog value_log(device, 8 << 20, kRegion);
  log::CircularLog donor_key(donor_device, 0, 4 << 20);
  log::CircularLog donor_value(donor_device, 4 << 20, 4 << 20);
  store::StoreConfig cfg;
  cfg.bucket_size = 512;
  cfg.num_segments = 8;
  cfg.chain_bits = 5;
  cfg.compaction_threshold = 0.60;
  store::DataStore ds(sim, core, store::LogSet{0, &key_log, &value_log}, cfg);
  ds.AddLogSet(store::LogSet{1, &donor_key, &donor_value});

  const uint64_t seed = testutil::TestSeed(0x4a9ed);
  Rng rng(seed);
  std::map<std::string, std::vector<uint8_t>> oracle;  // ordered, like the index

  // The invariant under test: the range index holds exactly the oracle's
  // keys, in the same order, every entry's location resolves through a
  // point GET to the oracle's bytes, and the B+-tree structure is sound.
  auto check_against_oracle = [&](int op) {
    std::vector<std::string> indexed;
    ds.range_index().Visit(
        [&](const std::string& k, const store::RangeIndex::ValueLoc&) {
          indexed.push_back(k);
        });
    ASSERT_TRUE(std::is_sorted(indexed.begin(), indexed.end()))
        << "op " << op << " seed " << seed;
    std::vector<std::string> expect;
    expect.reserve(oracle.size());
    for (const auto& [k, v] : oracle) expect.push_back(k);
    ASSERT_EQ(indexed, expect) << "op " << op << " seed " << seed;
    ASSERT_TRUE(ds.range_index().CheckInvariants())
        << "op " << op << " seed " << seed;
    // Suffix visit from a random start = oracle lower_bound suffix.
    std::string start = "rk" + std::to_string(rng.NextBounded(64));
    std::vector<std::string> suffix;
    ds.range_index().VisitFrom(
        start, [&](const std::string& k, const store::RangeIndex::ValueLoc&) {
          suffix.push_back(k);
          return suffix.size() < 8;
        });
    auto it = oracle.lower_bound(start);
    for (const std::string& got : suffix) {
      ASSERT_TRUE(it != oracle.end()) << "op " << op << " seed " << seed;
      ASSERT_EQ(got, it->first) << "op " << op << " seed " << seed;
      ++it;
    }
  };

  constexpr int kKeys = 64;
  constexpr int kOps = 3000;
  uint64_t tag = 0;
  uint64_t value_bytes_written = 0;
  bool swapped_stretch = false;
  for (int i = 0; i < kOps; ++i) {
    std::string key = "rk" + std::to_string(rng.NextBounded(kKeys));
    const uint64_t roll = rng.NextBounded(1000);
    if (roll < 550) {
      auto value = testutil::TestValue(++tag, 16 + rng.NextBounded(120));
      value_bytes_written += value.size();
      ASSERT_TRUE(testutil::SyncPut(sim, ds, key, value).ok())
          << "op " << i << " seed " << seed;
      oracle[key] = std::move(value);
    } else if (roll < 750) {
      Status st = testutil::SyncDel(sim, ds, key);
      ASSERT_TRUE(st.ok() || st.IsNotFound())
          << "op " << i << " seed " << seed << ": " << st.ToString();
      oracle.erase(key);
    } else {
      std::vector<uint8_t> out;
      Status st = testutil::SyncGet(sim, ds, key, &out);
      auto it = oracle.find(key);
      if (it == oracle.end()) {
        EXPECT_TRUE(st.IsNotFound()) << "op " << i << " seed " << seed;
      } else {
        ASSERT_TRUE(st.ok()) << "op " << i << " seed " << seed;
        EXPECT_EQ(out, it->second) << "op " << i << " seed " << seed;
      }
    }

    // A swapped stretch in the middle of the run: PUTs land on the donor
    // SSD, then merge-back relocates them home via forced key compactions.
    if (i == kOps / 3) {
      ds.SetSwapTarget(1);
      swapped_stretch = true;
    }
    if (i == kOps / 2) {
      ds.SetSwapTarget(std::nullopt);
      for (int pass = 0; pass < 8 && ds.swapped_segments() > 0; ++pass) {
        bool done = false;
        ds.ForceKeyCompaction([&](Status) { done = true; });
        testutil::RunUntilFlag(sim, done);
      }
      ASSERT_EQ(ds.swapped_segments(), 0u) << "seed " << seed;
    }
    if (i % 512 == 511) {
      bool kd = false, vd = false;
      ds.ForceKeyCompaction([&](Status) { kd = true; });
      testutil::RunUntilFlag(sim, kd);
      ds.ForceValueCompaction([&](Status) { vd = true; });
      testutil::RunUntilFlag(sim, vd);
    }
    if (i % 128 == 127) check_against_oracle(i);
  }
  // The claims in this test's name must not be vacuous.
  EXPECT_GT(value_bytes_written, 3 * kRegion);  // value log lapped (wrap)
  EXPECT_TRUE(swapped_stretch);
  EXPECT_GT(ds.stats().swap_puts, 0u);
  check_against_oracle(kOps);

  // Every surviving location must resolve: point-GET each indexed key and
  // compare bytes against the oracle (locations repaired by compaction and
  // merge-back still point at live value-log entries).
  ds.range_index().Visit(
      [&](const std::string& k, const store::RangeIndex::ValueLoc&) {
        std::vector<uint8_t> out;
        ASSERT_TRUE(testutil::SyncGet(sim, ds, k, &out).ok())
            << k << " seed " << seed;
        EXPECT_EQ(out, oracle.at(k)) << k << " seed " << seed;
      });
}

}  // namespace
}  // namespace leed
