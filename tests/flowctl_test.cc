// Tests for the inter-JBOF flow control: token view bookkeeping and the
// Algorithm-1 scheduler, including the Nagle-probe arm and round-robin
// fairness across tenants.

#include <gtest/gtest.h>

#include <vector>

#include "flowctl/flow_control.h"
#include "flowctl/scheduler.h"

namespace leed::flowctl {
namespace {

TEST(TokenViewTest, AccountsStartOptimistic) {
  TokenView view(16);
  EXPECT_EQ(view.Account({0, 0}).tokens, 16);
  EXPECT_EQ(view.size(), 1u);
}

TEST(TokenViewTest, SendChargesAndResponseReplenishes) {
  TokenView view(10);
  SsdRef ref{1, 2};
  view.OnSend(ref, 3);
  EXPECT_EQ(view.Account(ref).tokens, 7);
  EXPECT_EQ(view.Account(ref).outstanding, 1u);
  view.OnResponse(ref, 42, 100);
  EXPECT_EQ(view.Account(ref).tokens, 42);
  EXPECT_EQ(view.Account(ref).outstanding, 0u);
}

TEST(TokenViewTest, TokensClampAtZero) {
  TokenView view(2);
  SsdRef ref{0, 0};
  view.OnSend(ref, 5);
  EXPECT_EQ(view.Account(ref).tokens, 0);
}

TEST(TokenViewTest, RichestAccountPicksMaxTokens) {
  TokenView view(0);
  std::vector<SsdRef> refs = {{0, 0}, {1, 0}, {2, 0}};
  view.OnResponse(refs[0], 5, 0);
  view.OnResponse(refs[1], 50, 0);
  view.OnResponse(refs[2], 20, 0);
  auto it = view.RichestAccount(refs.begin(), refs.end());
  EXPECT_EQ(it->node, 1u);
}

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : view_(10), sched_(view_) { tenant_ = sched_.AddTenant(); }

  OutRequest Req(SsdRef target, uint32_t cost, int id) {
    OutRequest r;
    r.target = target;
    r.token_cost = cost;
    r.send = [this, id] { sent_.push_back(id); };
    return r;
  }

  TokenView view_;
  FlowScheduler sched_;
  uint32_t tenant_;
  std::vector<int> sent_;
};

TEST_F(SchedulerTest, SendsWhileTokensLast) {
  SsdRef t{0, 0};
  // 10 initial tokens, cost 3: Alg1 sends while cost < tokens:
  // 10 -> 7 -> 4 (cost 3 < 4 sends) -> 1 (3 < 1 false; outstanding 3 > 1 so
  // the 4th defers).
  for (int i = 0; i < 4; ++i) sched_.Enqueue(tenant_, Req(t, 3, i));
  EXPECT_EQ(sent_, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sched_.QueuedTotal(), 1u);
  EXPECT_EQ(sched_.stats().sent_with_tokens, 3u);
  EXPECT_GT(sched_.stats().deferrals, 0u);
}

TEST_F(SchedulerTest, ResponseUnblocksDeferred) {
  SsdRef t{0, 0};
  for (int i = 0; i < 4; ++i) sched_.Enqueue(tenant_, Req(t, 3, i));
  ASSERT_EQ(sent_.size(), 3u);
  sched_.OnResponse(t, 20, 0);  // plenty of tokens now
  EXPECT_EQ(sent_.size(), 4u);
  EXPECT_EQ(sched_.QueuedTotal(), 0u);
}

TEST_F(SchedulerTest, NagleProbeFiresWhenNothingOutstanding) {
  SsdRef t{3, 1};
  // Exhaust the account first.
  view_.Account(t).tokens = 0;
  sched_.Enqueue(tenant_, Req(t, 2, 0));
  // Nothing outstanding to t -> the probe arm must send it anyway.
  EXPECT_EQ(sent_, (std::vector<int>{0}));
  EXPECT_EQ(sched_.stats().sent_as_probe, 1u);
  EXPECT_EQ(view_.Account(t).tokens, 0);

  // With >1 outstanding, the next zero-token request defers.
  view_.Account(t).outstanding = 3;
  sched_.Enqueue(tenant_, Req(t, 2, 1));
  EXPECT_EQ(sent_.size(), 1u);
  EXPECT_EQ(sched_.QueuedTotal(), 1u);
}

// Regression: Visit used strict `<`, so a request whose cost exactly
// equaled the advertised tokens was deferred (or sent as a zero-token
// probe) instead of a normal send — against Algorithm 1's "tokens >= cost".
TEST_F(SchedulerTest, BoundaryCostEqualToTokensSendsNormally) {
  SsdRef t{2, 0};
  view_.Account(t).tokens = 3;
  view_.Account(t).outstanding = 4;  // deferral arm would trigger if taken
  sched_.Enqueue(tenant_, Req(t, 3, 7));
  EXPECT_EQ(sent_, (std::vector<int>{7}));
  EXPECT_EQ(sched_.stats().sent_with_tokens, 1u);
  EXPECT_EQ(sched_.stats().sent_as_probe, 0u);
  EXPECT_EQ(sched_.stats().deferrals, 0u);
  // OnSend charged the exact cost: the account is drained, not probed to 0.
  EXPECT_EQ(view_.Account(t).tokens, 0);
}

TEST_F(SchedulerTest, RoundRobinAcrossTenants) {
  uint32_t t2 = sched_.AddTenant();
  SsdRef a{0, 0}, b{1, 0};
  view_.Account(a).tokens = 100;
  view_.Account(b).tokens = 100;
  sched_.Enqueue(tenant_, Req(a, 2, 10));
  sched_.Enqueue(tenant_, Req(a, 2, 11));
  sched_.Enqueue(t2, Req(b, 2, 20));
  sched_.Enqueue(t2, Req(b, 2, 21));
  ASSERT_EQ(sent_.size(), 4u);
  // All sent; both tenants served (exact interleave depends on cursor).
  EXPECT_NE(std::find(sent_.begin(), sent_.end(), 20), sent_.end());
  EXPECT_NE(std::find(sent_.begin(), sent_.end(), 11), sent_.end());
}

TEST_F(SchedulerTest, DisabledBypassesTokens) {
  FlowScheduler raw(view_, /*enabled=*/false);
  uint32_t t = raw.AddTenant();
  SsdRef ref{0, 0};
  view_.Account(ref).tokens = 0;
  view_.Account(ref).outstanding = 10;
  int fired = 0;
  OutRequest r;
  r.target = ref;
  r.token_cost = 3;
  r.send = [&] { ++fired; };
  raw.Enqueue(t, std::move(r));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(raw.QueuedTotal(), 0u);
}

TEST_F(SchedulerTest, IndependentTargetsDontBlockEachOther) {
  SsdRef blocked{0, 0}, open{1, 0};
  view_.Account(blocked).tokens = 0;
  view_.Account(blocked).outstanding = 5;  // defers
  view_.Account(open).tokens = 100;
  sched_.Enqueue(tenant_, Req(blocked, 2, 0));
  sched_.Enqueue(tenant_, Req(open, 2, 1));
  // The blocked head defers (rotates back); the open-target request sends.
  EXPECT_EQ(sent_, (std::vector<int>{1}));
  EXPECT_EQ(sched_.QueuedTotal(), 1u);
}

}  // namespace
}  // namespace leed::flowctl
