// Crash-consistency torture harness (docs/FAULTS.md).
//
// Engine level: enumerate crash points at every device-IO boundary of a
// scripted workload — the k-th IO persists only a random strict prefix and
// everything after it is black-holed, exactly like power loss — then
// restart the engine over the surviving device contents, run superblock +
// extended-scan recovery, and check the durability contract:
//
//   * acked => durable: every operation whose callback fired before the
//     crash is fully visible after recovery;
//   * unacked => cleanly absent (or, for the single in-flight operation,
//     atomically applied): the one op whose callback never fired may land
//     in either its before or after state, never anything else.
//
// Cluster level: a 3-node chain-replicated cluster takes a link partition
// that heals plus a tail-node power-loss crash and restart; every PUT a
// client saw acknowledged must still be readable afterwards.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "engine/io_engine.h"
#include "leed/cluster_sim.h"
#include "sim/cpu_model.h"
#include "sim/fault.h"
#include "sim/simulator.h"
#include "sim/ssd_model.h"
#include "store/superblock.h"
#include "test_util.h"

namespace leed {
namespace {

using engine::EngineConfig;
using engine::IoEngine;
using engine::OpType;
using engine::Request;

// ---------------------------------------------------------------------------
// Fault-plan grammar
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, ParsesFullGrammar) {
  auto r = sim::ParseFaultPlan(
      "dev:read_err=0.01,write_err=0.02,fail_read_at=5,spike_p=0.1,spike_x=8,"
      "torn=1,crash_at_io=33,node=2,ssd=1;"
      "net:drop=0.001,dup=0.002,delay_p=0.03,delay_us=250;"
      "part:a=0,b=1,at_ms=20,heal_ms=60,oneway=1;"
      "crash:node=2,at_ms=50,restart_ms=120");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const sim::FaultPlan& plan = r.value();
  ASSERT_EQ(plan.devices.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.devices[0].spec.read_error_rate, 0.01);
  EXPECT_EQ(plan.devices[0].spec.fail_read_at, 5u);
  EXPECT_TRUE(plan.devices[0].spec.torn_writes);
  EXPECT_EQ(plan.devices[0].spec.crash_at_io, 33u);
  EXPECT_EQ(plan.devices[0].node, 2);
  EXPECT_EQ(plan.devices[0].ssd, 1);
  EXPECT_TRUE(plan.has_net);
  EXPECT_EQ(plan.net.delay_ns, 250u * kMicrosecond);
  ASSERT_EQ(plan.partitions.size(), 1u);
  EXPECT_FALSE(plan.partitions[0].bidirectional);
  EXPECT_EQ(plan.partitions[0].start, 20u * kMillisecond);
  EXPECT_EQ(plan.partitions[0].heal, 60u * kMillisecond);
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_EQ(plan.crashes[0].node, 2u);
  EXPECT_EQ(plan.crashes[0].restart, 120u * kMillisecond);
}

TEST(FaultPlanTest, RejectsMalformedInput) {
  EXPECT_FALSE(sim::ParseFaultPlan("dev").ok());             // missing ':'
  EXPECT_FALSE(sim::ParseFaultPlan("dev:read_err").ok());    // missing '='
  EXPECT_FALSE(sim::ParseFaultPlan("dev:read_err=x").ok());  // bad number
  EXPECT_FALSE(sim::ParseFaultPlan("dev:bogus=1").ok());     // unknown key
  EXPECT_FALSE(sim::ParseFaultPlan("gpu:oops=1").ok());      // unknown kind
  EXPECT_FALSE(sim::ParseFaultPlan("dev:dead_at=x").ok());   // bad number
  EXPECT_FALSE(sim::ParseFaultPlan("dev:dead_after_ms=oops").ok());
  auto empty = sim::ParseFaultPlan("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().Empty());
}

TEST(FaultPlanTest, ParsesPermanentDeviceDeath) {
  // dead_at: the device dies at its N-th IO. dead_after_ms: a timer kills
  // it outright (ClusterSim arms FaultInjector::KillDevice at that offset).
  auto r = sim::ParseFaultPlan(
      "dev:dead_at=120,node=1,ssd=0;dev:dead_after_ms=15.5,node=2,ssd=1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const sim::FaultPlan& plan = r.value();
  ASSERT_EQ(plan.devices.size(), 2u);
  EXPECT_EQ(plan.devices[0].spec.dead_at, 120u);
  EXPECT_EQ(plan.devices[0].node, 1);
  EXPECT_EQ(plan.devices[0].dead_after, 0);
  EXPECT_EQ(plan.devices[1].spec.dead_at, 0u);
  EXPECT_EQ(plan.devices[1].dead_after,
            static_cast<SimTime>(15.5 * kMillisecond));
  EXPECT_EQ(plan.devices[1].ssd, 1);
}

// ---------------------------------------------------------------------------
// Engine-level crash-point enumeration
// ---------------------------------------------------------------------------

// The scripted workload: 60 sequential operations over 12 keys, every 7th
// a DEL, values sized to exercise multiple value-log blocks. Small segment
// count + tiny logs force real compaction runs inside the script, so crash
// points land inside merges and checkpoint writes too.
struct ScriptOp {
  OpType type;
  std::string key;
  std::vector<uint8_t> value;
};

std::vector<ScriptOp> BuildScript() {
  std::vector<ScriptOp> ops;
  for (int i = 0; i < 60; ++i) {
    std::string key = "tk" + std::to_string(i % 12);
    if (i % 7 == 6) {
      ops.push_back({OpType::kDel, key, {}});
    } else {
      ops.push_back(
          {OpType::kPut, key, testutil::TestValue(i, 64 + (i % 5) * 37)});
    }
  }
  return ops;
}

EngineConfig TortureEngine() {
  EngineConfig cfg;
  cfg.ssd_count = 1;
  cfg.stores_per_ssd = 1;
  cfg.ssd = sim::Dct983Spec();
  cfg.ssd.capacity_bytes = 8ull << 20;
  cfg.ssd.latency_jitter = 0;  // deterministic timing per crash point
  cfg.ssd.slow_io_prob = 0;
  cfg.store_template.num_segments = 8;
  cfg.store_template.bucket_size = 512;
  cfg.store_template.compaction_threshold = 0.5;
  cfg.partition_bytes = store::kSuperblockRegionBytes + 192 * 1024;
  cfg.wait_queue_capacity = 64;
  cfg.enable_data_swap = false;
  cfg.checkpoint_period = 2 * kMillisecond;  // several rounds inside the script
  return cfg;
}

// What the application layer knows at the moment of the crash.
struct CrashRun {
  // Key -> last acknowledged state (value, or nullopt after an acked DEL).
  std::map<std::string, std::optional<std::vector<uint8_t>>> acked;
  bool hung = false;  // an op's callback never fired (crash mid-op)
  std::string inflight_key;
  std::optional<std::vector<uint8_t>> inflight_applied;
  uint64_t total_ios = 0;
};

// One crash-at-k experiment: fresh simulator, fresh device, fresh engine,
// same seeds everywhere — runs are bit-identical up to the crash point.
class TortureRig {
 public:
  explicit TortureRig(uint64_t crash_at_io)
      : cpu_(sim_, 2, 3.0), injector_(sim_, 0x7717), cfg_(TortureEngine()) {
    ssd_ = std::make_unique<sim::SimSsd>(sim_, cfg_.ssd, 42);
    sim::DeviceFaultSpec spec;
    spec.crash_at_io = crash_at_io;
    faults_ = injector_.AddDevice(spec, /*seed=*/99, /*node=*/0, /*unit=*/0);
    ssd_->set_faults(faults_);
    cfg_.external_ssds = {ssd_.get()};
    engine_ = std::make_unique<IoEngine>(sim_, cpu_, cfg_, /*seed=*/7);
  }

  CrashRun Execute(const std::vector<ScriptOp>& script) {
    CrashRun out;
    for (const ScriptOp& op : script) {
      bool done = false;
      Status st = Status::Internal("pending");
      Request req;
      req.type = op.type;
      req.key = op.key;
      req.value = op.value;
      req.store_id = 0;
      req.callback = [&](Status s, std::vector<uint8_t>, engine::ResponseMeta) {
        st = std::move(s);
        done = true;
      };
      engine_->Submit(std::move(req));
      testutil::RunUntilFlag(sim_, done);
      if (!done) {
        // The device crashed under this op: its callback will never fire.
        out.hung = true;
        out.inflight_key = op.key;
        if (op.type == OpType::kPut) out.inflight_applied = op.value;
        break;
      }
      EXPECT_TRUE(st.ok() || (op.type == OpType::kDel && st.IsNotFound()))
          << op.key << ": " << st.ToString();
      if (op.type == OpType::kPut) {
        out.acked[op.key] = op.value;
      } else {
        out.acked[op.key] = std::nullopt;
      }
    }
    out.total_ios = faults_->ios_seen();
    return out;
  }

  // "Plug the node back in": quiesce the dead engine, revive the device,
  // and bring up a fresh engine that recovers purely from device contents.
  IoEngine& Recover() {
    engine_->Quiesce();
    faults_->set_spec(sim::DeviceFaultSpec{});  // disarm crash_at_io
    faults_->Revive();
    EngineConfig rcfg = cfg_;
    rcfg.checkpoint_period = 0;  // keep the verification read-only
    recovered_ = std::make_unique<IoEngine>(sim_, cpu_, rcfg, /*seed=*/7);
    bool done = false;
    Status st = Status::Internal("pending");
    recovered_->RecoverFromDevices([&](Status s, store::RecoveryStats) {
      st = std::move(s);
      done = true;
    });
    testutil::RunUntilFlag(sim_, done);
    EXPECT_TRUE(done) << "recovery never completed";
    EXPECT_TRUE(st.ok()) << st.ToString();
    return *recovered_;
  }

  // Post-recovery GET through the fresh engine.
  std::optional<std::vector<uint8_t>> Lookup(IoEngine& eng,
                                             const std::string& key) {
    Status st = Status::Internal("pending");
    std::vector<uint8_t> value;
    bool done = false;
    Request req;
    req.type = OpType::kGet;
    req.key = key;
    req.store_id = 0;
    req.callback = [&](Status s, std::vector<uint8_t> v, engine::ResponseMeta) {
      st = std::move(s);
      value = std::move(v);
      done = true;
    };
    eng.Submit(std::move(req));
    testutil::RunUntilFlag(sim_, done);
    EXPECT_TRUE(done);
    EXPECT_TRUE(st.ok() || st.IsNotFound()) << key << ": " << st.ToString();
    if (!st.ok()) return std::nullopt;
    return value;
  }

  sim::Simulator sim_;
  sim::CpuModel cpu_;
  sim::FaultInjector injector_;
  EngineConfig cfg_;
  std::unique_ptr<sim::SimSsd> ssd_;
  sim::DeviceFaults* faults_ = nullptr;
  std::unique_ptr<IoEngine> engine_;
  std::unique_ptr<IoEngine> recovered_;
};

void VerifyInvariants(TortureRig& rig, IoEngine& recovered,
                      const std::vector<ScriptOp>& script,
                      const CrashRun& run) {
  std::set<std::string> keys;
  for (const ScriptOp& op : script) keys.insert(op.key);
  for (const std::string& key : keys) {
    auto got = rig.Lookup(recovered, key);
    auto it = run.acked.find(key);
    std::optional<std::vector<uint8_t>> expect =
        it == run.acked.end() ? std::nullopt : it->second;
    if (run.hung && key == run.inflight_key) {
      // The single in-flight op may have landed or not — but nothing else.
      EXPECT_TRUE(got == expect || got == run.inflight_applied)
          << key << ": recovered to neither the pre- nor post-crash state";
    } else {
      EXPECT_EQ(got.has_value(), expect.has_value())
          << key << (expect ? " lost an acked write" : " resurrected");
      if (got && expect) {
        EXPECT_EQ(*got, *expect) << key << " recovered a stale value";
      }
    }
  }
}

TEST(FaultTortureTest, AckedImpliesDurableAtEveryCrashPoint) {
  const std::vector<ScriptOp> script = BuildScript();

  // Dry run (no faults) fixes the IO count; runs are deterministic, so the
  // k-th IO of every crash run is the same IO the dry run issued k-th.
  TortureRig dry(0);
  CrashRun base = dry.Execute(script);
  ASSERT_FALSE(base.hung);
  ASSERT_EQ(base.acked.size(), 12u);
  const uint64_t n = base.total_ios;
  ASSERT_GE(n, 100u) << "script too small to enumerate crash points";

  const uint64_t step = std::max<uint64_t>(1, (n + 59) / 60);
  int points = 0;
  for (uint64_t k = 1; k <= n; k += step) {
    SCOPED_TRACE("crash_at_io=" + std::to_string(k));
    TortureRig rig(k);
    CrashRun run = rig.Execute(script);
    IoEngine& recovered = rig.Recover();
    VerifyInvariants(rig, recovered, script, run);
    ++points;
  }
  EXPECT_GE(points, 50) << "harness must enumerate at least 50 crash points";
}

// ---------------------------------------------------------------------------
// Range-index recovery identity: crash mid-scan / mid-compaction-with-scans
// ---------------------------------------------------------------------------

// Engine-level SCAN with the snapshot pre-resolved the way the node layer
// does it. Returns true if the scan's callback fired before the simulator
// drained (a crash mid-scan may leave it hung — both are acceptable).
bool SubmitScan(sim::Simulator& sim, IoEngine& eng, uint32_t limit) {
  Request req;
  req.type = OpType::kScan;
  req.store_id = 0;
  req.scan_limit = limit;
  req.scan_snapshot = eng.ScanSnapshot(0, "", limit);
  bool done = false;
  req.scan_callback = [&](Status, std::vector<store::ScanItem>,
                          engine::ResponseMeta) { done = true; };
  eng.Submit(std::move(req));
  testutil::RunUntilFlag(sim, done);
  return done;
}

// The recovery contract under test: the range index the recovered store
// rebuilt during its bucket scan must agree byte-for-byte with an index
// rebuilt fresh from the recovered SegTbl — no entry stranded by the
// crashed scan or the crashed compaction survives into either.
void ExpectRecoveredIndexMatchesFreshRebuild(sim::Simulator& sim,
                                             IoEngine& recovered) {
  store::DataStore& ds = recovered.data_store(0);
  const std::string recovered_dump = ds.range_index().DebugDump();
  store::RangeIndex fresh;
  bool done = false;
  Status st = Status::Internal("pending");
  ds.RebuildRangeIndex(&fresh,
                       [&](Status s, uint64_t) {
                         st = std::move(s);
                         done = true;
                       });
  testutil::RunUntilFlag(sim, done);
  ASSERT_TRUE(done) << "rebuild never completed";
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(recovered_dump, fresh.DebugDump())
      << "recovered range index diverges from a fresh bucket scan";
  EXPECT_TRUE(ds.range_index().CheckInvariants());
}

TEST(FaultTortureTest, RangeIndexSurvivesCrashMidScan) {
  const std::vector<ScriptOp> script = BuildScript();

  // Dry run: IO count at script end and after one full scan; crash points
  // in (script_ios, scan_ios] land inside the scan's value fetches.
  TortureRig dry(0);
  CrashRun base = dry.Execute(script);
  ASSERT_FALSE(base.hung);
  const uint64_t script_ios = base.total_ios;
  ASSERT_TRUE(SubmitScan(dry.sim_, *dry.engine_, 16));
  const uint64_t scan_ios = dry.faults_->ios_seen();
  ASSERT_GT(scan_ios, script_ios) << "scan issued no device IOs";

  for (uint64_t k = script_ios + 1; k <= scan_ios; ++k) {
    SCOPED_TRACE("crash_at_io=" + std::to_string(k));
    TortureRig rig(k);
    CrashRun run = rig.Execute(script);
    ASSERT_FALSE(run.hung);
    (void)SubmitScan(rig.sim_, *rig.engine_, 16);  // dies mid-flight
    IoEngine& recovered = rig.Recover();
    VerifyInvariants(rig, recovered, script, run);
    ExpectRecoveredIndexMatchesFreshRebuild(rig.sim_, recovered);
  }
}

TEST(FaultTortureTest, RangeIndexSurvivesCrashMidCompactionWithScans) {
  const std::vector<ScriptOp> script = BuildScript();

  // Dry run: measure the IO span of a forced value compaction interleaved
  // with a scan, so every crash point lands inside that interleaving.
  TortureRig dry(0);
  CrashRun base = dry.Execute(script);
  ASSERT_FALSE(base.hung);
  const uint64_t script_ios = base.total_ios;
  bool compacted = false;
  dry.engine_->data_store(0).ForceValueCompaction(
      [&](Status) { compacted = true; });
  ASSERT_TRUE(SubmitScan(dry.sim_, *dry.engine_, 16));
  testutil::RunUntilFlag(dry.sim_, compacted);
  ASSERT_TRUE(compacted);
  const uint64_t busy_ios = dry.faults_->ios_seen();
  ASSERT_GT(busy_ios, script_ios) << "compaction+scan issued no device IOs";

  const uint64_t span = busy_ios - script_ios;
  const uint64_t step = std::max<uint64_t>(1, span / 24);
  for (uint64_t k = script_ios + 1; k <= busy_ios; k += step) {
    SCOPED_TRACE("crash_at_io=" + std::to_string(k));
    TortureRig rig(k);
    CrashRun run = rig.Execute(script);
    ASSERT_FALSE(run.hung);
    bool comp_done = false;
    rig.engine_->data_store(0).ForceValueCompaction(
        [&](Status) { comp_done = true; });
    (void)SubmitScan(rig.sim_, *rig.engine_, 16);  // interleaves, then dies
    testutil::RunUntilFlag(rig.sim_, comp_done);
    IoEngine& recovered = rig.Recover();
    VerifyInvariants(rig, recovered, script, run);
    ExpectRecoveredIndexMatchesFreshRebuild(rig.sim_, recovered);
  }
}

// ---------------------------------------------------------------------------
// Cluster-level: partition + tail crash, zero acked-write loss
// ---------------------------------------------------------------------------

ClusterConfig TortureCluster() {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.num_clients = 1;
  cfg.seed = testutil::TestSeed(0xfa17);

  cfg.node.platform = sim::StingrayJbof();
  cfg.node.stack = StackKind::kLeed;
  cfg.node.engine.ssd_count = 2;
  cfg.node.engine.stores_per_ssd = 2;
  cfg.node.engine.ssd = sim::Dct983Spec();
  cfg.node.engine.ssd.capacity_bytes = 1ull << 30;
  cfg.node.engine.ssd.latency_jitter = 0;
  cfg.node.engine.ssd.slow_io_prob = 0;
  cfg.node.engine.store_template.num_segments = 512;
  cfg.node.engine.store_template.bucket_size = 512;
  cfg.node.engine.checkpoint_period = 5 * kMillisecond;

  cfg.client.stores_per_ssd = 2;
  cfg.client.request_timeout = 10 * kMillisecond;

  cfg.control_plane.replication_factor = 3;
  cfg.control_plane.heartbeat_period = 5 * kMillisecond;
  cfg.control_plane.failure_timeout = 25 * kMillisecond;
  return cfg;
}

TEST(FaultTortureClusterTest, NoAckedWriteLostAcrossPartitionAndTailCrash) {
  ClusterSim cluster(TortureCluster());
  cluster.Bootstrap();

  // Partition nodes 0<->1 at 5ms (heals at 40ms) and power-cut node 2 at
  // 10ms (restarts, recovers from its SSDs, and rejoins at 80ms).
  auto plan = sim::ParseFaultPlan(
      "part:a=0,b=1,at_ms=5,heal_ms=40;"
      "crash:node=2,at_ms=10,restart_ms=80");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  cluster.ArmFaultPlan(plan.value());

  // Sequential unique-key PUTs straight through the fault window. Only
  // acknowledged writes go into the ledger; timeouts/errors are expected
  // while links are cut or the tail is down.
  sim::Simulator& sim = cluster.simulator();
  std::map<std::string, std::vector<uint8_t>> ledger;
  int attempts = 0;
  while (sim.Now() < 150 * kMillisecond && attempts < 4000) {
    std::string key = "fk" + std::to_string(attempts);
    std::vector<uint8_t> value = testutil::TestValue(1000 + attempts, 128);
    ++attempts;
    bool done = false;
    Status st = Status::Internal("pending");
    cluster.client(0).Put(key, value, [&](Status s, SimTime) {
      st = std::move(s);
      done = true;
    });
    testutil::RunUntilFlag(sim, done);
    ASSERT_TRUE(done) << "client callback must fire (timeout at worst)";
    if (st.ok()) ledger[key] = std::move(value);
  }
  ASSERT_GT(ledger.size(), 50u) << "workload never got through the faults";

  // Injected faults really happened.
  EXPECT_GT(cluster.faults().counters().net_partition_drops->value(), 0u);
  EXPECT_EQ(cluster.faults().counters().node_crashes->value(), 1u);
  EXPECT_EQ(cluster.faults().counters().node_restarts->value(), 1u);
  EXPECT_FALSE(cluster.node(2).crashed()) << "node 2 should be back up";

  // Let the rejoin transitions drain.
  sim.RunUntil(sim.Now() + 300 * kMillisecond);

  // Zero acked loss: every acknowledged PUT is still readable. A couple of
  // retries tolerate transient Unavailable while views settle.
  for (const auto& [key, value] : ledger) {
    Status st = Status::Internal("pending");
    std::vector<uint8_t> out;
    for (int attempt = 0; attempt < 5; ++attempt) {
      bool done = false;
      cluster.client(0).Get(key,
                            [&](Status s, std::vector<uint8_t> v, SimTime) {
                              st = std::move(s);
                              out = std::move(v);
                              done = true;
                            });
      testutil::RunUntilFlag(sim, done);
      ASSERT_TRUE(done);
      if (st.ok()) break;
      sim.RunUntil(sim.Now() + 20 * kMillisecond);
    }
    ASSERT_TRUE(st.ok()) << "acked write lost: " << key << " -> "
                         << st.ToString();
    EXPECT_EQ(out, value) << key << " recovered a stale value";
  }
}

// ---------------------------------------------------------------------------
// Cluster-level: permanent SSD death mid-workload, vnode-granular failover,
// blank-device replacement, rejoin — zero acked-write loss end to end
// ---------------------------------------------------------------------------

TEST(FaultTortureClusterTest, SsdDeathFailoverAndBlankDeviceRejoin) {
  ClusterConfig cfg = TortureCluster();
  // Tiny segments keep compaction running throughout the write stream, so
  // the device death lands while compaction IO is in flight too.
  cfg.node.engine.store_template.num_segments = 64;
  ClusterSim cluster(cfg);
  cluster.Bootstrap();
  sim::Simulator& sim = cluster.simulator();

  // 10ms: node 2's SSD 0 dies permanently (every IO hard-fails). The
  // engine latch must fail over exactly that SSD's stores — node 2 keeps
  // serving SSD 1. 60ms: the operator pulls the whole node. 80ms: a blank
  // replacement device is installed and the node restarts into a rejoin.
  sim.At(10 * kMillisecond, [&cluster] { cluster.KillSsd(2, 0); });
  sim.At(60 * kMillisecond, [&cluster] { cluster.CrashNode(2); });
  sim.At(80 * kMillisecond, [&cluster] {
    cluster.ReplaceSsd(2, 0);
    cluster.RestartNode(2);
  });

  std::map<std::string, std::vector<uint8_t>> ledger;
  int attempts = 0;
  while (sim.Now() < 150 * kMillisecond && attempts < 4000) {
    std::string key = "dk" + std::to_string(attempts);
    std::vector<uint8_t> value = testutil::TestValue(7000 + attempts, 128);
    ++attempts;
    bool done = false;
    Status st = Status::Internal("pending");
    cluster.client(0).Put(key, value, [&](Status s, SimTime) {
      st = std::move(s);
      done = true;
    });
    testutil::RunUntilFlag(sim, done);
    ASSERT_TRUE(done) << "client callback must fire (timeout at worst)";
    if (st.ok()) ledger[key] = std::move(value);
  }
  ASSERT_GT(ledger.size(), 50u) << "workload never got through the faults";

  // The failure domain was the store, then the node, then healed: the dead
  // device latched (faults.dev.dead), the control plane failed over that
  // SSD's stores vnode-by-vnode (not the whole node), and the rejoin with
  // a blank device abandoned nothing.
  const auto& cp = cluster.control_plane().stats();
  EXPECT_GE(cp.store_failures, 1u) << "SSD death never escalated to failover";
  EXPECT_GT(cp.vnodes_failed_over, 0u);
  EXPECT_EQ(cluster.faults().counters().node_crashes->value(), 1u);
  EXPECT_FALSE(cluster.node(2).crashed()) << "node 2 should be back up";

  // Let the rejoin/backfill transitions drain.
  sim.RunUntil(sim.Now() + 300 * kMillisecond);
  EXPECT_EQ(cluster.control_plane().stats().copies_abandoned, 0u)
      << "recovery abandoned a fill arc: data loss";

  for (const auto& [key, value] : ledger) {
    Status st = Status::Internal("pending");
    std::vector<uint8_t> out;
    for (int attempt = 0; attempt < 5; ++attempt) {
      bool done = false;
      cluster.client(0).Get(key,
                            [&](Status s, std::vector<uint8_t> v, SimTime) {
                              st = std::move(s);
                              out = std::move(v);
                              done = true;
                            });
      testutil::RunUntilFlag(sim, done);
      ASSERT_TRUE(done);
      if (st.ok()) break;
      sim.RunUntil(sim.Now() + 20 * kMillisecond);
    }
    ASSERT_TRUE(st.ok()) << "acked write lost: " << key << " -> "
                         << st.ToString();
    EXPECT_EQ(out, value) << key << " recovered a stale value";
  }
}

}  // namespace
}  // namespace leed
