// Unit tests for the front-end client library against a scripted fake
// node: routing (head for writes, token-richest replica for CRRS reads),
// NACK-triggered view refresh and retry, overload backoff, and timeout
// recovery.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cluster/wire.h"
#include "leed/client.h"
#include "leed/wire.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace leed {
namespace {

class FakeNode {
 public:
  FakeNode(sim::Simulator& simulator, sim::Network& net, uint32_t id)
      : sim_(simulator), net_(net), id_(id) {
    endpoint_ = net_.AddEndpoint(sim::NicSpec{});
    net_.SetReceiver(endpoint_, [this](sim::Message m) {
      if (auto* req = std::any_cast<ClientRequestMsg>(&m.payload)) {
        requests.push_back(*req);
        if (!respond) return;  // scripted silence (timeout tests)
        ResponseMsg resp;
        resp.req_id = req->req_id;
        resp.code = next_code;
        resp.node = id_;
        resp.ssd = 0;
        resp.tokens = advertise_tokens;
        resp.has_tokens = true;
        if (next_code == StatusCode::kOk && req->op == engine::OpType::kGet) {
          resp.value = {1, 2, 3};
        }
        net_.Send(endpoint_, req->reply_to, WireSize(resp), std::move(resp));
        next_code = StatusCode::kOk;  // one-shot scripting
      }
    });
  }

  sim::EndpointId endpoint() const { return endpoint_; }

  std::vector<ClientRequestMsg> requests;
  bool respond = true;
  StatusCode next_code = StatusCode::kOk;
  uint32_t advertise_tokens = 64;

 private:
  sim::Simulator& sim_;
  sim::Network& net_;
  uint32_t id_;
  sim::EndpointId endpoint_;
};

class ClientTest : public ::testing::Test {
 protected:
  ClientTest() : net_(sim_) {
    cp_endpoint_ = net_.AddEndpoint(sim::NicSpec{});
    net_.SetReceiver(cp_endpoint_, [this](sim::Message m) {
      if (std::any_cast<cluster::ViewRequestMsg>(&m.payload)) {
        ++view_requests_;
        cluster::ViewUpdateMsg upd{view_};
        net_.Send(cp_endpoint_, m.src, 64, std::move(upd));
      }
    });
    for (uint32_t i = 0; i < 3; ++i) {
      nodes_.push_back(std::make_unique<FakeNode>(sim_, net_, i));
      endpoints_[i] = nodes_[i]->endpoint();
    }
    // Three vnodes, one per node, equally spaced; R=3 -> every chain is
    // {a, b, c} in ring order from the key position.
    view_.epoch = 1;
    view_.replication_factor = 3;
    for (uint32_t i = 0; i < 3; ++i) {
      view_.vnodes[i] = cluster::VNodeInfo{
          i, i, 0, static_cast<uint64_t>(i) * (UINT64_MAX / 3),
          cluster::VNodeState::kRunning};
    }
  }

  std::unique_ptr<Client> MakeClient(ClientConfig cfg = {}) {
    cfg.stores_per_ssd = 1;
    auto c = std::make_unique<Client>(sim_, net_, cp_endpoint_, &endpoints_, cfg);
    c->AdoptView(view_);
    return c;
  }

  uint32_t HeadOwner(const std::string& key) {
    auto chain = view_.ChainForKey(key);
    return view_.Find(chain[0])->owner_node;
  }
  uint32_t TailOwner(const std::string& key) {
    auto chain = view_.ChainForKey(key);
    return view_.Find(chain.back())->owner_node;
  }

  sim::Simulator sim_;
  sim::Network net_;
  sim::EndpointId cp_endpoint_;
  std::vector<std::unique_ptr<FakeNode>> nodes_;
  std::map<uint32_t, sim::EndpointId> endpoints_;
  cluster::ClusterView view_;
  int view_requests_ = 0;
};

TEST_F(ClientTest, WritesGoToChainHead) {
  auto client = MakeClient();
  bool done = false;
  client->Put("key1", {9}, [&](Status st, SimTime) {
    EXPECT_TRUE(st.ok());
    done = true;
  });
  testutil::RunUntilFlag(sim_, done);
  uint32_t head = HeadOwner("key1");
  ASSERT_EQ(nodes_[head]->requests.size(), 1u);
  EXPECT_EQ(nodes_[head]->requests[0].hop, 0);
  EXPECT_EQ(nodes_[head]->requests[0].op, engine::OpType::kPut);
}

TEST_F(ClientTest, BaselineReadsGoToTail) {
  ClientConfig cfg;
  cfg.crrs_reads = false;
  auto client = MakeClient(cfg);
  bool done = false;
  client->Get("key1", [&](Status, std::vector<uint8_t>, SimTime) { done = true; });
  testutil::RunUntilFlag(sim_, done);
  uint32_t tail = TailOwner("key1");
  ASSERT_EQ(nodes_[tail]->requests.size(), 1u);
  EXPECT_EQ(nodes_[tail]->requests[0].hop, 2);
}

TEST_F(ClientTest, CrrsReadsPickTokenRichestReplica) {
  ClientConfig cfg;
  cfg.crrs_reads = true;
  auto client = MakeClient(cfg);
  // Teach the client that node 1's SSD is rich and the others are poor, by
  // issuing one probe round first.
  for (uint32_t i = 0; i < 3; ++i) nodes_[i]->advertise_tokens = (i == 1) ? 200 : 1;
  for (int r = 0; r < 3; ++r) {
    bool done = false;
    client->Get("probe" + std::to_string(r),
                [&](Status, std::vector<uint8_t>, SimTime) { done = true; });
    testutil::RunUntilFlag(sim_, done);
  }
  for (auto& n : nodes_) n->requests.clear();
  // Now reads should concentrate on node 1 (most tokens), regardless of key.
  int to_node1 = 0;
  for (int r = 0; r < 8; ++r) {
    bool done = false;
    client->Get("key" + std::to_string(r),
                [&](Status, std::vector<uint8_t>, SimTime) { done = true; });
    testutil::RunUntilFlag(sim_, done);
  }
  to_node1 = static_cast<int>(nodes_[1]->requests.size());
  EXPECT_GT(to_node1, 4);
}

TEST_F(ClientTest, NackTriggersViewRefreshAndRetry) {
  auto client = MakeClient();
  uint32_t head = HeadOwner("kx");
  nodes_[head]->next_code = StatusCode::kWrongView;  // first attempt NACKs
  bool done = false;
  Status final = Status::Internal("pending");
  client->Put("kx", {1}, [&](Status st, SimTime) {
    final = std::move(st);
    done = true;
  });
  testutil::RunUntilFlag(sim_, done);
  EXPECT_TRUE(final.ok());  // retry succeeded
  EXPECT_GE(nodes_[head]->requests.size(), 2u);
  EXPECT_GE(view_requests_, 1);
  EXPECT_EQ(client->stats().nacks, 1u);
  EXPECT_GE(client->stats().retries, 1u);
}

TEST_F(ClientTest, OverloadBacksOffAndRetries) {
  auto client = MakeClient();
  uint32_t head = HeadOwner("ko");
  nodes_[head]->next_code = StatusCode::kOverloaded;
  bool done = false;
  client->Put("ko", {1}, [&](Status st, SimTime) {
    EXPECT_TRUE(st.ok());
    done = true;
  });
  testutil::RunUntilFlag(sim_, done);
  EXPECT_EQ(client->stats().overloads, 1u);
  EXPECT_GE(client->stats().retries, 1u);
}

TEST_F(ClientTest, TimeoutRetriesAndEventuallyFails) {
  ClientConfig cfg;
  cfg.request_timeout = 2 * kMillisecond;
  cfg.max_retries = 3;
  auto client = MakeClient(cfg);
  for (auto& n : nodes_) n->respond = false;  // dead silence
  bool done = false;
  Status final = Status::Ok();
  client->Get("gone", [&](Status st, std::vector<uint8_t>, SimTime) {
    final = std::move(st);
    done = true;
  });
  testutil::RunUntilFlag(sim_, done);
  ASSERT_TRUE(done);
  EXPECT_EQ(final.code(), StatusCode::kUnavailable);
  EXPECT_EQ(client->stats().timeouts, 3u);  // all three attempts timed out
  EXPECT_GE(view_requests_, 1);             // timeout suspects a dead node
}

TEST_F(ClientTest, LatencySpansRetries) {
  ClientConfig cfg;
  cfg.request_timeout = 2 * kMillisecond;
  auto client = MakeClient(cfg);
  uint32_t head = HeadOwner("kr");
  nodes_[head]->respond = false;
  // Re-enable after the first timeout so the retry lands.
  sim_.Schedule(3 * kMillisecond, [&] { nodes_[head]->respond = true; });
  SimTime latency = 0;
  bool done = false;
  client->Put("kr", {1}, [&](Status st, SimTime lat) {
    EXPECT_TRUE(st.ok());
    latency = lat;
    done = true;
  });
  testutil::RunUntilFlag(sim_, done);
  EXPECT_GT(latency, 2 * kMillisecond);  // includes the timed-out attempt
}

// Runs one client against dead-silent nodes until its retries exhaust and
// returns the total backoff it scheduled. Fresh simulator per call, so two
// calls with the same seed must be byte-identical.
uint64_t RunBackoffScenario(uint64_t seed) {
  sim::Simulator sim;
  sim::Network net(sim);
  cluster::ClusterView view;
  view.epoch = 1;
  view.replication_factor = 3;
  sim::EndpointId cp = net.AddEndpoint(sim::NicSpec{});
  net.SetReceiver(cp, [&](sim::Message m) {
    if (std::any_cast<cluster::ViewRequestMsg>(&m.payload)) {
      cluster::ViewUpdateMsg upd{view};
      net.Send(cp, m.src, 64, std::move(upd));
    }
  });
  std::vector<std::unique_ptr<FakeNode>> nodes;
  std::map<uint32_t, sim::EndpointId> endpoints;
  for (uint32_t i = 0; i < 3; ++i) {
    nodes.push_back(std::make_unique<FakeNode>(sim, net, i));
    nodes[i]->respond = false;  // every attempt times out
    endpoints[i] = nodes[i]->endpoint();
    view.vnodes[i] = cluster::VNodeInfo{
        i, i, 0, static_cast<uint64_t>(i) * (UINT64_MAX / 3),
        cluster::VNodeState::kRunning};
  }
  ClientConfig cfg;
  cfg.stores_per_ssd = 1;
  cfg.request_timeout = 1 * kMillisecond;
  cfg.max_retries = 5;
  cfg.backoff_seed = seed;
  Client client(sim, net, cp, &endpoints, cfg);
  client.AdoptView(view);
  bool done = false;
  client.Put("bk", {1}, [&](Status st, SimTime) {
    EXPECT_EQ(st.code(), StatusCode::kUnavailable);
    done = true;
  });
  testutil::RunUntilFlag(sim, done);
  EXPECT_TRUE(done);
  EXPECT_GT(client.stats().backoff_us, 0u);
  return client.stats().backoff_us;
}

// Regression for retry desynchronization: the jitter must come from a
// deterministic per-client stream (byte-reproducible given backoff_seed),
// and distinct seeds must actually spread clients apart — if every client
// draws the same delays they re-collide on the recovering store forever.
TEST(ClientBackoffTest, BackoffIsSeededDeterministicJitter) {
  uint64_t a = RunBackoffScenario(0x5eed);
  uint64_t b = RunBackoffScenario(0x5eed);
  EXPECT_EQ(a, b) << "same seed must reproduce identical backoff";
  uint64_t c = RunBackoffScenario(0xd1ff);
  EXPECT_NE(a, c) << "different seeds must desynchronize the jitter";
}

TEST_F(ClientTest, FillingReplicaAvoidedForReads) {
  ClientConfig cfg;
  cfg.crrs_reads = false;  // tail reads
  // Mark the tail of "key1" as filling for the whole ring.
  auto chain = view_.ChainForKey("key1");
  view_.filling.push_back(cluster::FillingRange{chain.back(), 0, 0, 1});
  auto client = MakeClient(cfg);
  bool done = false;
  client->Get("key1", [&](Status, std::vector<uint8_t>, SimTime) { done = true; });
  testutil::RunUntilFlag(sim_, done);
  // The read went to the penultimate member instead.
  uint32_t penult_owner = view_.Find(chain[chain.size() - 2])->owner_node;
  EXPECT_EQ(nodes_[penult_owner]->requests.size(), 1u);
  uint32_t tail_owner = view_.Find(chain.back())->owner_node;
  EXPECT_TRUE(nodes_[tail_owner]->requests.empty());
}

TEST_F(ClientTest, StaleViewUpdateIgnored) {
  auto client = MakeClient();
  cluster::ClusterView old = view_;
  old.epoch = 0;
  client->AdoptView(old);
  EXPECT_EQ(client->view().epoch, 1u);
}

}  // namespace
}  // namespace leed
