// Unit tests for the circular log (paper §3.2.1): append/read/compact
// pointer discipline, wraparound behaviour, space accounting.

#include <gtest/gtest.h>

#include <vector>

#include "log/circular_log.h"
#include "sim/block_device.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace leed::log {
namespace {

class CircularLogTest : public ::testing::Test {
 protected:
  CircularLogTest() : device_(sim_, 1 << 20, 512) {}

  AppendResult SyncAppend(CircularLog& log, std::vector<uint8_t> data) {
    AppendResult out;
    bool done = false;
    log.Append(std::move(data), [&](AppendResult r) {
      out = std::move(r);
      done = true;
    });
    testutil::RunUntilFlag(sim_, done);
    EXPECT_TRUE(done);
    return out;
  }

  ReadResult SyncRead(CircularLog& log, uint64_t offset, uint64_t length) {
    ReadResult out;
    bool done = false;
    log.Read(offset, length, [&](ReadResult r) {
      out = std::move(r);
      done = true;
    });
    testutil::RunUntilFlag(sim_, done);
    EXPECT_TRUE(done);
    return out;
  }

  sim::Simulator sim_;
  sim::MemBlockDevice device_;
};

TEST_F(CircularLogTest, AppendAssignsMonotonicOffsets) {
  CircularLog log(device_, 0, 4096);
  auto a = SyncAppend(log, testutil::TestValue(1, 100));
  auto b = SyncAppend(log, testutil::TestValue(2, 50));
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_EQ(a.offset, 0u);
  EXPECT_EQ(b.offset, 100u);
  EXPECT_EQ(log.tail(), 150u);
  EXPECT_EQ(log.used(), 150u);
}

TEST_F(CircularLogTest, ReadReturnsExactBytes) {
  CircularLog log(device_, 0, 4096);
  auto payload = testutil::TestValue(9, 333);
  auto a = SyncAppend(log, payload);
  ASSERT_TRUE(a.status.ok());
  auto r = SyncRead(log, a.offset, payload.size());
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.data, payload);
}

TEST_F(CircularLogTest, RejectsBadAppends) {
  CircularLog log(device_, 0, 1024);
  auto empty = SyncAppend(log, {});
  EXPECT_EQ(empty.status.code(), StatusCode::kInvalidArgument);
  auto oversized = SyncAppend(log, testutil::TestValue(1, 2048));
  EXPECT_EQ(oversized.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(CircularLogTest, FullLogRejectsUntilHeadAdvances) {
  CircularLog log(device_, 0, 1000);
  ASSERT_TRUE(SyncAppend(log, testutil::TestValue(1, 600)).status.ok());
  ASSERT_TRUE(SyncAppend(log, testutil::TestValue(2, 400)).status.ok());
  EXPECT_EQ(log.free_space(), 0u);
  auto full = SyncAppend(log, testutil::TestValue(3, 1));
  EXPECT_EQ(full.status.code(), StatusCode::kOutOfSpace);

  ASSERT_TRUE(log.AdvanceHead(600).ok());
  EXPECT_EQ(log.free_space(), 600u);
  EXPECT_TRUE(SyncAppend(log, testutil::TestValue(4, 500)).status.ok());
}

TEST_F(CircularLogTest, WrappingEntryRoundTrips) {
  CircularLog log(device_, 0, 1000);
  ASSERT_TRUE(SyncAppend(log, testutil::TestValue(1, 900)).status.ok());
  ASSERT_TRUE(log.AdvanceHead(900).ok());
  // This entry starts at physical 900 and wraps to the region start.
  auto payload = testutil::TestValue(2, 300);
  auto a = SyncAppend(log, payload);
  ASSERT_TRUE(a.status.ok());
  EXPECT_EQ(a.offset, 900u);
  auto r = SyncRead(log, 900, 300);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.data, payload);
}

TEST_F(CircularLogTest, ManyWrapsPreserveData) {
  CircularLog log(device_, 4096, 1024);  // non-zero base exercises mapping
  uint64_t head = 0;
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> window;
  for (int i = 0; i < 200; ++i) {
    auto payload = testutil::TestValue(i, 100 + (i % 37));
    if (log.free_space() < payload.size()) {
      // Reclaim the oldest two entries.
      head = window[2].first;
      ASSERT_TRUE(log.AdvanceHead(head).ok());
      window.erase(window.begin(), window.begin() + 2);
    }
    auto a = SyncAppend(log, payload);
    ASSERT_TRUE(a.status.ok());
    window.emplace_back(a.offset, payload);
  }
  for (auto& [offset, payload] : window) {
    auto r = SyncRead(log, offset, payload.size());
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.data, payload) << "offset " << offset;
  }
}

TEST_F(CircularLogTest, ReadOutsideValidRangeFails) {
  CircularLog log(device_, 0, 4096);
  ASSERT_TRUE(SyncAppend(log, testutil::TestValue(1, 100)).status.ok());
  ASSERT_TRUE(SyncAppend(log, testutil::TestValue(2, 100)).status.ok());
  ASSERT_TRUE(log.AdvanceHead(100).ok());
  // Reclaimed prefix.
  EXPECT_FALSE(SyncRead(log, 0, 100).status.ok());
  // Beyond the tail.
  EXPECT_FALSE(SyncRead(log, 150, 100).status.ok());
  // Valid region still works.
  EXPECT_TRUE(SyncRead(log, 100, 100).status.ok());
}

TEST_F(CircularLogTest, AdvanceHeadValidatesRange) {
  CircularLog log(device_, 0, 4096);
  ASSERT_TRUE(SyncAppend(log, testutil::TestValue(1, 100)).status.ok());
  EXPECT_FALSE(log.AdvanceHead(200).ok());  // beyond tail
  ASSERT_TRUE(log.AdvanceHead(50).ok());
  EXPECT_FALSE(log.AdvanceHead(20).ok());  // backwards
}

TEST_F(CircularLogTest, CompactionNeededThreshold) {
  CircularLog log(device_, 0, 1000);
  EXPECT_FALSE(log.CompactionNeeded(0.5));
  ASSERT_TRUE(SyncAppend(log, testutil::TestValue(1, 600)).status.ok());
  EXPECT_TRUE(log.CompactionNeeded(0.5));
  EXPECT_FALSE(log.CompactionNeeded(0.7));
}

TEST_F(CircularLogTest, ResetDiscardsContents) {
  CircularLog log(device_, 0, 1000);
  ASSERT_TRUE(SyncAppend(log, testutil::TestValue(1, 500)).status.ok());
  log.Reset();
  EXPECT_EQ(log.used(), 0u);
  EXPECT_EQ(log.free_space(), 1000u);
  // Stale offsets now fail loudly instead of returning recycled bytes.
  EXPECT_FALSE(SyncRead(log, 0, 100).status.ok());
}

TEST_F(CircularLogTest, CountsOps) {
  CircularLog log(device_, 0, 4096);
  SyncAppend(log, testutil::TestValue(1, 10));
  SyncAppend(log, testutil::TestValue(2, 10));
  SyncRead(log, 0, 10);
  EXPECT_EQ(log.appends(), 2u);
  EXPECT_EQ(log.reads(), 1u);
}

}  // namespace
}  // namespace leed::log
