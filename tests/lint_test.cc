// Golden-corpus tests for leed-lint (tools/lint/).
//
// The corpus under tests/lint_corpus/ is a miniature repo (its own src/ and
// tests/ subtrees) so path-scoped rules apply exactly as they do on the real
// tree. Every rule must both FIRE on a violation and be SUPPRESSED by a
// justified `leed-lint: allow(...)` annotation — a linter whose suppressions
// silently stop matching is worse than no linter. Finally, the real tree
// itself must lint clean; that is the same invariant the blocking CI job
// enforces, pinned here so `ctest` alone catches a regression.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "lint/lint.h"

#ifndef LEED_LINT_CORPUS_DIR
#error "build must define LEED_LINT_CORPUS_DIR"
#endif
#ifndef LEED_SOURCE_ROOT
#error "build must define LEED_SOURCE_ROOT"
#endif

namespace leed::lint {
namespace {

std::vector<Finding> CorpusFindings() {
  static const std::vector<Finding> kFindings =
      LintTree(LEED_LINT_CORPUS_DIR);
  return kFindings;
}

bool HasFindingAt(const std::vector<Finding>& findings,
                  const std::string& file, int line) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       return f.file == file && f.line == line;
                     });
}

// ---------------------------------------------------------------------------
// Golden table — every expected (file, line, rule) triple, nothing more.
// ---------------------------------------------------------------------------

TEST(LintCorpusTest, MatchesGoldenTable) {
  struct Expected {
    const char* file;
    int line;
    const char* rule;
  };
  // LintTree sorts by (file, line, rule, message); keep this table in that
  // order so a mismatch points at the first divergence.
  const std::vector<Expected> kGolden = {
      {"src/common/no_pragma.h", 1, "pragma-once"},
      {"src/engine/allow_misuse.cc", 6, "unused-allow"},
      {"src/engine/allow_misuse.cc", 9, "allow-syntax"},
      {"src/engine/allow_misuse.cc", 12, "allow-syntax"},
      {"src/engine/allow_misuse.cc", 15, "allow-syntax"},
      {"src/log/banned_calls.cc", 9, "banned-func"},
      {"src/log/banned_calls.cc", 10, "banned-func"},
      {"src/log/banned_calls.cc", 11, "memcpy"},
      {"src/log/banned_calls.cc", 12, "memcpy"},
      {"src/obs/metric_names.cc", 15, "metric-name"},
      {"src/obs/metric_names.cc", 16, "metric-name"},
      {"src/obs/metric_names.cc", 17, "metric-name"},
      {"src/obs/metric_names.cc", 18, "metric-name"},
      {"src/sim/bad_clock.cc", 11, "determinism"},
      {"src/sim/bad_clock.cc", 13, "determinism"},
      {"src/sim/bad_clock.cc", 15, "determinism"},
      {"src/sim/bad_clock.cc", 16, "determinism"},
      {"src/sim/bad_clock.cc", 17, "determinism"},
      {"src/store/unordered_fixture.h", 18, "unordered-iter"},
      {"src/store/unordered_fixture.h", 28, "unordered-iter"},
  };

  const std::vector<Finding> findings = CorpusFindings();
  ASSERT_EQ(findings.size(), kGolden.size())
      << "corpus drifted:\n" << FormatFindings(findings);
  for (size_t i = 0; i < kGolden.size(); ++i) {
    EXPECT_EQ(findings[i].file, kGolden[i].file) << "at index " << i;
    EXPECT_EQ(findings[i].line, kGolden[i].line) << "at index " << i;
    EXPECT_EQ(findings[i].rule, kGolden[i].rule) << "at index " << i;
    EXPECT_FALSE(findings[i].message.empty()) << "at index " << i;
  }
}

// ---------------------------------------------------------------------------
// Every content rule both fires and is suppressed somewhere in the corpus.
// ---------------------------------------------------------------------------

TEST(LintCorpusTest, EveryContentRuleFires) {
  std::set<std::string> fired;
  for (const Finding& f : CorpusFindings()) fired.insert(f.rule);
  for (const char* rule :
       {"determinism", "unordered-iter", "pragma-once", "banned-func",
        "memcpy", "metric-name", "allow-syntax", "unused-allow"}) {
    EXPECT_TRUE(fired.count(rule) != 0) << "rule never fired: " << rule;
  }
}

TEST(LintCorpusTest, JustifiedAllowsSuppress) {
  const std::vector<Finding> findings = CorpusFindings();
  // Each pair is a corpus line that violates a rule but carries (or follows)
  // a justified allow(...) annotation for it.
  EXPECT_FALSE(HasFindingAt(findings, "src/sim/bad_clock.cc", 22))
      << "determinism allow ignored";
  EXPECT_FALSE(HasFindingAt(findings, "src/store/unordered_fixture.h", 22))
      << "unordered-iter iteration allow ignored";
  EXPECT_FALSE(HasFindingAt(findings, "src/store/unordered_fixture.h", 30))
      << "unordered-iter declaration allow ignored";
  EXPECT_FALSE(HasFindingAt(findings, "src/log/banned_calls.cc", 20))
      << "memcpy allow ignored";
  EXPECT_FALSE(HasFindingAt(findings, "src/log/banned_calls.cc", 23))
      << "banned-func allow ignored";
  EXPECT_FALSE(HasFindingAt(findings, "src/obs/metric_names.cc", 20))
      << "metric-name allow ignored";
  EXPECT_FALSE(HasFindingAt(findings, "src/common/legacy_guard.h", 1))
      << "pragma-once allow ignored";
}

TEST(LintCorpusTest, ScopedRulesStayInScope) {
  // tests/scope_check.cc uses rand() and an unordered_map: both are outside
  // the determinism scope (src/sim, src/leed, src/engine, src/replication)
  // and the unordered-iter scope (src/), so the file must be silent.
  for (const Finding& f : CorpusFindings()) {
    EXPECT_NE(f.file, "tests/scope_check.cc") << FormatFindings({f});
  }
}

TEST(LintCorpusTest, MemberCallsAndDeclarationsAreNotFlagged) {
  const std::vector<Finding> findings = CorpusFindings();
  // `long time() const` (declaration) and `c.time()` / `Clock().time()`
  // (member calls) must not trip the libc-call rules.
  EXPECT_FALSE(HasFindingAt(findings, "src/sim/bad_clock.cc", 25));
  EXPECT_FALSE(HasFindingAt(findings, "src/sim/bad_clock.cc", 29));
  EXPECT_FALSE(HasFindingAt(findings, "src/sim/bad_clock.cc", 30));
  // A member function named like a banned function, and a call to it.
  EXPECT_FALSE(HasFindingAt(findings, "src/log/banned_calls.cc", 26));
  EXPECT_FALSE(HasFindingAt(findings, "src/log/banned_calls.cc", 29));
}

// ---------------------------------------------------------------------------
// LintFile unit behavior (lexer + per-rule edge cases).
// ---------------------------------------------------------------------------

TEST(LintFileTest, CommentsAndStringsAreNotCode) {
  const std::string src =
      "// rand() in a comment\n"
      "/* std::time(nullptr) in a block */\n"
      "const char* s = \"rand() srand() time()\";\n";
  EXPECT_TRUE(LintFile("src/sim/x.cc", src).empty());
}

TEST(LintFileTest, RawStringsAreNotCode) {
  const std::string src =
      "const char* s = R\"(rand(); std::time(nullptr);)\";\n";
  EXPECT_TRUE(LintFile("src/sim/x.cc", src).empty());
}

TEST(LintFileTest, EncodingPrefixedRawStringsAreNotCode) {
  const std::string src =
      "const char* a = u8R\"(rand(); std::time(nullptr);)\";\n"
      "const wchar_t* b = LR\"(srand(1);)\";\n"
      "const char16_t* c = uR\"(std::random_device d;)\";\n";
  EXPECT_TRUE(LintFile("src/sim/x.cc", src).empty());
}

TEST(LintFileTest, IdentifierEndingInRIsNotARawStringPrefix) {
  // LOG_HDR"x(" must lex as identifier + ordinary string literal: keying
  // raw-string detection off the preceding 'R' alone enters raw-string
  // state, swallows the rest of the file hunting for a )x" terminator,
  // and hides the rand() on the next line.
  const std::string src =
      "puts(LOG_HDR\"x(\");\n"
      "long v = rand();\n";
  const std::vector<Finding> findings = LintFile("src/sim/x.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[0].rule, "determinism");
}

TEST(LintFileTest, DigitSeparatorIsNotACharLiteral) {
  // A naive lexer treats 1'000'000 as opening a char literal and swallows
  // the rest of the line, hiding the rand() call.
  const std::string src = "long v = 1'000'000 + rand();\n";
  const std::vector<Finding> findings = LintFile("src/sim/x.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "determinism");
}

TEST(LintFileTest, AllowOnTheSameLineSuppresses) {
  const std::string src =
      "long v = rand();  // leed-lint: allow(determinism): unit test\n";
  EXPECT_TRUE(LintFile("src/sim/x.cc", src).empty());
}

TEST(LintFileTest, AllowSkipsCommentOnlyContinuationLines) {
  const std::string src =
      "// leed-lint: allow(determinism): multi-line justification that\n"
      "// wraps onto a second comment line before the code\n"
      "long v = rand();\n";
  EXPECT_TRUE(LintFile("src/sim/x.cc", src).empty());
}

TEST(LintFileTest, DeterminismScopeIsPathBased) {
  const std::string src = "long v = rand();\n";
  EXPECT_FALSE(LintFile("src/engine/x.cc", src).empty());
  EXPECT_FALSE(LintFile("src/replication/x.cc", src).empty());
  EXPECT_FALSE(LintFile("src/leed/x.cc", src).empty());
  EXPECT_TRUE(LintFile("src/store/x.cc", src).empty());
  EXPECT_TRUE(LintFile("tools/x.cc", src).empty());
}

TEST(LintFileTest, MetricNamePrefixLiteralMayEndWithDot) {
  // "ssd." + std::to_string(i): the literal is a prefix, so the trailing
  // dot is fine; only a whole-argument literal must not end with '.'.
  const std::string ok =
      "r.GetCounter(\"ssd.\" + std::to_string(i) + \".read_us\");\n";
  EXPECT_TRUE(LintFile("src/obs/x.cc", ok).empty());
  const std::string bad = "r.GetCounter(\"ssd.\");\n";
  ASSERT_EQ(LintFile("src/obs/x.cc", bad).size(), 1u);
}

TEST(LintFileTest, FreeFunctionSubIsNotAMetricGetter) {
  // Only member calls (r.Sub / r->Sub) are metric-registry scopes; a free
  // function that happens to be named Sub takes arbitrary strings.
  const std::string src = "int x = Sub(\"Not A Metric\");\n";
  EXPECT_TRUE(LintFile("src/obs/x.cc", src).empty());
}

TEST(LintRulesTest, CatalogIsConsistent) {
  EXPECT_FALSE(Rules().empty());
  for (const RuleInfo& r : Rules()) {
    EXPECT_TRUE(IsKnownRule(r.name));
    EXPECT_NE(std::string(r.summary), "");
  }
  EXPECT_FALSE(IsKnownRule("bogus-rule"));
}

TEST(LintFormatTest, FormatFindingsShape) {
  const std::string text =
      FormatFindings({{"src/a.cc", 7, "memcpy", "raw memcpy"}});
  EXPECT_EQ(text, "src/a.cc:7: [memcpy] raw memcpy\n");
}

// ---------------------------------------------------------------------------
// The real tree lints clean — same invariant as the blocking CI job.
// ---------------------------------------------------------------------------

TEST(LintTreeTest, RepositoryIsClean) {
  size_t files_scanned = 0;
  const std::vector<Finding> findings =
      LintTree(LEED_SOURCE_ROOT, TreeOptions{}, &files_scanned);
  EXPECT_GT(files_scanned, 100u) << "tree walk found suspiciously few files";
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

}  // namespace
}  // namespace leed::lint
