// Golden-corpus tests for leed-lint (tools/lint/).
//
// The corpus under tests/lint_corpus/ is a miniature repo (its own src/ and
// tests/ subtrees) so path-scoped rules apply exactly as they do on the real
// tree. Every rule must both FIRE on a violation and be SUPPRESSED by a
// justified `leed-lint: allow(...)` annotation — a linter whose suppressions
// silently stop matching is worse than no linter. Finally, the real tree
// itself must lint clean; that is the same invariant the blocking CI job
// enforces, pinned here so `ctest` alone catches a regression.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "lint/lint.h"

#ifndef LEED_LINT_CORPUS_DIR
#error "build must define LEED_LINT_CORPUS_DIR"
#endif
#ifndef LEED_SOURCE_ROOT
#error "build must define LEED_SOURCE_ROOT"
#endif

namespace leed::lint {
namespace {

std::vector<Finding> CorpusFindings() {
  static const std::vector<Finding> kFindings =
      LintTree(LEED_LINT_CORPUS_DIR);
  return kFindings;
}

bool HasFindingAt(const std::vector<Finding>& findings,
                  const std::string& file, int line) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       return f.file == file && f.line == line;
                     });
}

// ---------------------------------------------------------------------------
// Golden table — every expected (file, line, rule) triple, nothing more.
// ---------------------------------------------------------------------------

TEST(LintCorpusTest, MatchesGoldenTable) {
  struct Expected {
    const char* file;
    int line;
    const char* rule;
  };
  // LintTree sorts by (file, line, rule, message); keep this table in that
  // order so a mismatch points at the first divergence.
  const std::vector<Expected> kGolden = {
      {"src/cluster/guard_calls.cc", 15, "cross-shard-call"},
      {"src/common/count_bool.cc", 11, "count-in-bool-context"},
      {"src/common/count_bool.cc", 12, "count-in-bool-context"},
      {"src/common/count_bool.cc", 13, "count-in-bool-context"},
      {"src/common/count_bool.cc", 14, "count-in-bool-context"},
      {"src/common/no_pragma.h", 1, "pragma-once"},
      {"src/engine/allow_misuse.cc", 6, "unused-allow"},
      {"src/engine/allow_misuse.cc", 9, "allow-syntax"},
      {"src/engine/allow_misuse.cc", 12, "allow-syntax"},
      {"src/engine/allow_misuse.cc", 15, "allow-syntax"},
      {"src/log/banned_calls.cc", 9, "banned-func"},
      {"src/log/banned_calls.cc", 10, "banned-func"},
      {"src/log/banned_calls.cc", 11, "memcpy"},
      {"src/log/banned_calls.cc", 12, "memcpy"},
      {"src/obs/metric_names.cc", 15, "metric-name"},
      {"src/obs/metric_names.cc", 16, "metric-name"},
      {"src/obs/metric_names.cc", 17, "metric-name"},
      {"src/obs/metric_names.cc", 18, "metric-name"},
      {"src/sim/bad_clock.cc", 11, "determinism"},
      {"src/sim/bad_clock.cc", 13, "determinism"},
      {"src/sim/bad_clock.cc", 15, "determinism"},
      {"src/sim/bad_clock.cc", 16, "determinism"},
      {"src/sim/bad_clock.cc", 17, "determinism"},
      {"src/sim/shard_capture.cc", 14, "shard-affine-capture"},
      {"src/sim/shard_capture.cc", 25, "shard-affine-capture"},
      {"src/sim/shard_capture.cc", 28, "shard-affine-capture"},
      {"src/sim/static_shared.cc", 10, "unannotated-sim-shared"},
      {"src/sim/static_shared.cc", 15, "unannotated-sim-shared"},
      {"src/sim/static_shared.cc", 22, "unannotated-sim-shared"},
      {"src/store/pointer_order.cc", 16, "pointer-order"},
      {"src/store/pointer_order.cc", 17, "pointer-order"},
      {"src/store/pointer_order.cc", 25, "pointer-order"},
      {"src/store/unordered_fixture.h", 18, "unordered-iter"},
      {"src/store/unordered_fixture.h", 28, "unordered-iter"},
  };

  const std::vector<Finding> findings = CorpusFindings();
  ASSERT_EQ(findings.size(), kGolden.size())
      << "corpus drifted:\n" << FormatFindings(findings);
  for (size_t i = 0; i < kGolden.size(); ++i) {
    EXPECT_EQ(findings[i].file, kGolden[i].file) << "at index " << i;
    EXPECT_EQ(findings[i].line, kGolden[i].line) << "at index " << i;
    EXPECT_EQ(findings[i].rule, kGolden[i].rule) << "at index " << i;
    EXPECT_FALSE(findings[i].message.empty()) << "at index " << i;
  }
}

// ---------------------------------------------------------------------------
// Every content rule both fires and is suppressed somewhere in the corpus.
// ---------------------------------------------------------------------------

TEST(LintCorpusTest, EveryContentRuleFires) {
  std::set<std::string> fired;
  for (const Finding& f : CorpusFindings()) fired.insert(f.rule);
  for (const char* rule :
       {"determinism", "unordered-iter", "pragma-once", "banned-func",
        "memcpy", "metric-name", "count-in-bool-context", "allow-syntax",
        "unused-allow", "shard-affine-capture", "unannotated-sim-shared",
        "cross-shard-call", "pointer-order"}) {
    EXPECT_TRUE(fired.count(rule) != 0) << "rule never fired: " << rule;
  }
}

TEST(LintCorpusTest, JustifiedAllowsSuppress) {
  const std::vector<Finding> findings = CorpusFindings();
  // Each pair is a corpus line that violates a rule but carries (or follows)
  // a justified allow(...) annotation for it.
  EXPECT_FALSE(HasFindingAt(findings, "src/sim/bad_clock.cc", 22))
      << "determinism allow ignored";
  EXPECT_FALSE(HasFindingAt(findings, "src/store/unordered_fixture.h", 22))
      << "unordered-iter iteration allow ignored";
  EXPECT_FALSE(HasFindingAt(findings, "src/store/unordered_fixture.h", 30))
      << "unordered-iter declaration allow ignored";
  EXPECT_FALSE(HasFindingAt(findings, "src/log/banned_calls.cc", 20))
      << "memcpy allow ignored";
  EXPECT_FALSE(HasFindingAt(findings, "src/log/banned_calls.cc", 23))
      << "banned-func allow ignored";
  EXPECT_FALSE(HasFindingAt(findings, "src/obs/metric_names.cc", 20))
      << "metric-name allow ignored";
  EXPECT_FALSE(HasFindingAt(findings, "src/common/legacy_guard.h", 1))
      << "pragma-once allow ignored";
  EXPECT_FALSE(HasFindingAt(findings, "src/sim/shard_capture.cc", 42))
      << "shard-affine-capture allow ignored";
  EXPECT_FALSE(HasFindingAt(findings, "src/cluster/guard_calls.cc", 19))
      << "cross-shard-call allow ignored";
  EXPECT_FALSE(HasFindingAt(findings, "src/sim/static_shared.cc", 25))
      << "unannotated-sim-shared allow ignored";
  EXPECT_FALSE(HasFindingAt(findings, "src/store/pointer_order.cc", 22))
      << "pointer-order allow ignored";
  EXPECT_FALSE(HasFindingAt(findings, "src/common/count_bool.cc", 23))
      << "count-in-bool-context allow ignored";
}

TEST(LintCorpusTest, CrossShardOkMarkerSuppressesShardRules) {
  const std::vector<Finding> findings = CorpusFindings();
  // LEED_CROSS_SHARD_OK on (or directly above) a line is the reviewed
  // cross-shard escape hatch for the shard rules specifically.
  EXPECT_FALSE(HasFindingAt(findings, "src/sim/shard_capture.cc", 38))
      << "LEED_CROSS_SHARD_OK marker ignored for shard-affine-capture";
  EXPECT_FALSE(HasFindingAt(findings, "src/cluster/guard_calls.cc", 17))
      << "LEED_CROSS_SHARD_OK marker ignored for cross-shard-call";
  // A reviewed LEED_SHARD_SHARED with a real reason is not a finding.
  EXPECT_FALSE(HasFindingAt(findings, "src/sim/static_shared.cc", 19));
  EXPECT_FALSE(HasFindingAt(findings, "src/sim/static_shared.cc", 20));
}

TEST(LintCorpusTest, ScopedRulesStayInScope) {
  // tests/scope_check.cc uses rand() and an unordered_map: both are outside
  // the determinism scope (src/sim, src/leed, src/engine, src/replication)
  // and the unordered-iter scope (src/), so the file must be silent.
  for (const Finding& f : CorpusFindings()) {
    EXPECT_NE(f.file, "tests/scope_check.cc") << FormatFindings({f});
  }
}

TEST(LintCorpusTest, MemberCallsAndDeclarationsAreNotFlagged) {
  const std::vector<Finding> findings = CorpusFindings();
  // `long time() const` (declaration) and `c.time()` / `Clock().time()`
  // (member calls) must not trip the libc-call rules.
  EXPECT_FALSE(HasFindingAt(findings, "src/sim/bad_clock.cc", 25));
  EXPECT_FALSE(HasFindingAt(findings, "src/sim/bad_clock.cc", 29));
  EXPECT_FALSE(HasFindingAt(findings, "src/sim/bad_clock.cc", 30));
  // A member function named like a banned function, and a call to it.
  EXPECT_FALSE(HasFindingAt(findings, "src/log/banned_calls.cc", 26));
  EXPECT_FALSE(HasFindingAt(findings, "src/log/banned_calls.cc", 29));
}

// ---------------------------------------------------------------------------
// LintFile unit behavior (lexer + per-rule edge cases).
// ---------------------------------------------------------------------------

TEST(LintFileTest, CommentsAndStringsAreNotCode) {
  const std::string src =
      "// rand() in a comment\n"
      "/* std::time(nullptr) in a block */\n"
      "const char* s = \"rand() srand() time()\";\n";
  EXPECT_TRUE(LintFile("src/sim/x.cc", src).empty());
}

TEST(LintFileTest, RawStringsAreNotCode) {
  const std::string src =
      "const char* s = R\"(rand(); std::time(nullptr);)\";\n";
  EXPECT_TRUE(LintFile("src/sim/x.cc", src).empty());
}

TEST(LintFileTest, EncodingPrefixedRawStringsAreNotCode) {
  const std::string src =
      "const char* a = u8R\"(rand(); std::time(nullptr);)\";\n"
      "const wchar_t* b = LR\"(srand(1);)\";\n"
      "const char16_t* c = uR\"(std::random_device d;)\";\n";
  EXPECT_TRUE(LintFile("src/sim/x.cc", src).empty());
}

TEST(LintFileTest, IdentifierEndingInRIsNotARawStringPrefix) {
  // LOG_HDR"x(" must lex as identifier + ordinary string literal: keying
  // raw-string detection off the preceding 'R' alone enters raw-string
  // state, swallows the rest of the file hunting for a )x" terminator,
  // and hides the rand() on the next line.
  const std::string src =
      "puts(LOG_HDR\"x(\");\n"
      "long v = rand();\n";
  const std::vector<Finding> findings = LintFile("src/sim/x.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[0].rule, "determinism");
}

TEST(LintFileTest, DigitSeparatorIsNotACharLiteral) {
  // A naive lexer treats 1'000'000 as opening a char literal and swallows
  // the rest of the line, hiding the rand() call.
  const std::string src = "long v = 1'000'000 + rand();\n";
  const std::vector<Finding> findings = LintFile("src/sim/x.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "determinism");
}

TEST(LintFileTest, AllowOnTheSameLineSuppresses) {
  const std::string src =
      "long v = rand();  // leed-lint: allow(determinism): unit test\n";
  EXPECT_TRUE(LintFile("src/sim/x.cc", src).empty());
}

TEST(LintFileTest, AllowSkipsCommentOnlyContinuationLines) {
  const std::string src =
      "// leed-lint: allow(determinism): multi-line justification that\n"
      "// wraps onto a second comment line before the code\n"
      "long v = rand();\n";
  EXPECT_TRUE(LintFile("src/sim/x.cc", src).empty());
}

TEST(LintFileTest, DeterminismScopeIsPathBased) {
  const std::string src = "long v = rand();\n";
  EXPECT_FALSE(LintFile("src/engine/x.cc", src).empty());
  EXPECT_FALSE(LintFile("src/replication/x.cc", src).empty());
  EXPECT_FALSE(LintFile("src/leed/x.cc", src).empty());
  EXPECT_TRUE(LintFile("src/store/x.cc", src).empty());
  EXPECT_TRUE(LintFile("tools/x.cc", src).empty());
}

TEST(LintFileTest, MetricNamePrefixLiteralMayEndWithDot) {
  // "ssd." + std::to_string(i): the literal is a prefix, so the trailing
  // dot is fine; only a whole-argument literal must not end with '.'.
  const std::string ok =
      "r.GetCounter(\"ssd.\" + std::to_string(i) + \".read_us\");\n";
  EXPECT_TRUE(LintFile("src/obs/x.cc", ok).empty());
  const std::string bad = "r.GetCounter(\"ssd.\");\n";
  ASSERT_EQ(LintFile("src/obs/x.cc", bad).size(), 1u);
}

TEST(LintFileTest, FreeFunctionSubIsNotAMetricGetter) {
  // Only member calls (r.Sub / r->Sub) are metric-registry scopes; a free
  // function that happens to be named Sub takes arbitrary strings.
  const std::string src = "int x = Sub(\"Not A Metric\");\n";
  EXPECT_TRUE(LintFile("src/obs/x.cc", src).empty());
}

TEST(LintFileTest, CompanionHeaderFeedsTuModel) {
  // Annotations live in x.h next to the fields; linting x.cc with the
  // companion header must apply them — and without it, the same code is
  // invisible to the shard rules (declaration-driven, not name-guessing).
  const std::string header =
      "#pragma once\n"
      "struct C { Obj* cp_ LEED_SHARD_AFFINE; Sim sim_; };\n";
  const std::string cc =
      "void C::Go(int i) {\n"
      "  Simulator::ShardGuard g(sim_, NodeShard(i));\n"
      "  cp_->Register(i);\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/cluster/c.cc", cc).empty());
  const std::vector<Finding> findings =
      LintFile("src/cluster/c.cc", cc, &header);
  ASSERT_EQ(findings.size(), 1u) << FormatFindings(findings);
  EXPECT_EQ(findings[0].rule, "cross-shard-call");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintFileTest, SameShardGuardCallsAreSilent) {
  // The guarded shard's own object is reachable: the object expression
  // shares an identifier with the guard's shard argument.
  const std::string src =
      "struct C { std::vector<Obj*> nodes_ LEED_SHARD_AFFINE; Sim sim_;\n"
      "  void Go(int i) {\n"
      "    Simulator::ShardGuard g(sim_, NodeShard(i));\n"
      "    nodes_[i]->Start();\n"
      "  }\n"
      "};\n";
  EXPECT_TRUE(LintFile("src/cluster/c.cc", src).empty())
      << FormatFindings(LintFile("src/cluster/c.cc", src));
}

TEST(LintFileTest, SharedAnnotationRequiresReason) {
  const std::string bad = "static long g_x LEED_SHARD_SHARED(\"\") = 0;\n";
  const std::vector<Finding> findings = LintFile("src/sim/x.cc", bad);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unannotated-sim-shared");
  const std::string ok =
      "static long g_x LEED_SHARD_SHARED(\"merged at barrier\") = 0;\n";
  EXPECT_TRUE(LintFile("src/sim/x.cc", ok).empty());
}

TEST(LintRulesTest, CatalogIsConsistent) {
  EXPECT_FALSE(Rules().empty());
  for (const RuleInfo& r : Rules()) {
    EXPECT_TRUE(IsKnownRule(r.name));
    EXPECT_NE(std::string(r.summary), "");
  }
  EXPECT_FALSE(IsKnownRule("bogus-rule"));
}

TEST(LintFormatTest, FormatFindingsShape) {
  const std::string text =
      FormatFindings({{"src/a.cc", 7, "memcpy", "raw memcpy"}});
  EXPECT_EQ(text, "src/a.cc:7: [memcpy] raw memcpy\n");
}

TEST(LintFormatTest, GitHubAnnotationShape) {
  const std::string text = FormatFindingsGitHub(
      {{"src/a.cc", 7, "memcpy", "use leed::CopyBytes, 100% of the time"}});
  EXPECT_EQ(text,
            "::error file=src/a.cc,line=7,title=leed-lint memcpy::"
            "[memcpy] use leed::CopyBytes, 100%25 of the time\n");
}

TEST(LintFormatTest, GitHubEscapesPropertyValues) {
  // ':' and ',' in property values would split the workflow command; they
  // must be %-escaped there but left readable in the message body.
  const std::string text =
      FormatFindingsGitHub({{"src/a,b:c.cc", 1, "r", "msg: with, marks"}});
  EXPECT_EQ(text,
            "::error file=src/a%2Cb%3Ac.cc,line=1,title=leed-lint r::"
            "[r] msg: with, marks\n");
}

TEST(LintTreeTest, FindingOrderIsDeterministic) {
  // The documented report contract: sorted by (path, line, rule, message).
  const std::vector<Finding> findings = CorpusFindings();
  for (size_t i = 1; i < findings.size(); ++i) {
    const Finding& a = findings[i - 1];
    const Finding& b = findings[i];
    EXPECT_LE(std::tie(a.file, a.line, a.rule, a.message),
              std::tie(b.file, b.line, b.rule, b.message))
        << "unsorted at index " << i;
  }
}

// ---------------------------------------------------------------------------
// The real tree lints clean — same invariant as the blocking CI job.
// ---------------------------------------------------------------------------

TEST(LintTreeTest, RepositoryIsClean) {
  size_t files_scanned = 0;
  const std::vector<Finding> findings =
      LintTree(LEED_SOURCE_ROOT, TreeOptions{}, &files_scanned);
  EXPECT_GT(files_scanned, 100u) << "tree walk found suspiciously few files";
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

}  // namespace
}  // namespace leed::lint
