// Functional tests of the LEED data store: command correctness, chain
// growth, NVMe access counts (the paper's 2/3/2), compaction (key log and
// value log), data swapping, and the COPY primitive.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "log/circular_log.h"
#include "sim/block_device.h"
#include "sim/cpu_model.h"
#include "sim/simulator.h"
#include "store/compaction.h"
#include "store/data_store.h"
#include "test_util.h"

namespace leed::store {
namespace {

using testutil::SyncDel;
using testutil::SyncGet;
using testutil::SyncPut;
using testutil::TestValue;

class DataStoreTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kDeviceBytes = 64ull << 20;
  static constexpr uint32_t kBucketSize = 512;

  DataStoreTest()
      : device_(sim_, kDeviceBytes, 512),
        donor_device_(sim_, kDeviceBytes, 512),
        core_(sim_, 3.0) {}

  StoreConfig SmallConfig() {
    StoreConfig cfg;
    cfg.store_id = 0;
    cfg.home_ssd = 0;
    cfg.num_segments = 64;
    cfg.bucket_size = kBucketSize;
    cfg.chain_bits = 4;
    cfg.compaction_threshold = 0.60;
    cfg.compaction_chunk = 16 * 1024;
    cfg.subcompactions = 4;
    return cfg;
  }

  // Build a store over device_ with generous log sizes.
  std::unique_ptr<DataStore> MakeStore(StoreConfig cfg) {
    key_log_ = std::make_unique<log::CircularLog>(device_, 0, 8 << 20);
    value_log_ = std::make_unique<log::CircularLog>(device_, 8 << 20, 8 << 20);
    LogSet home{0, key_log_.get(), value_log_.get()};
    return std::make_unique<DataStore>(sim_, core_, home, cfg);
  }

  sim::Simulator sim_;
  sim::MemBlockDevice device_;
  sim::MemBlockDevice donor_device_;
  sim::CpuCore core_;
  std::unique_ptr<log::CircularLog> key_log_;
  std::unique_ptr<log::CircularLog> value_log_;
};

TEST_F(DataStoreTest, GetMissingIsNotFound) {
  auto ds = MakeStore(SmallConfig());
  EXPECT_TRUE(SyncGet(sim_, *ds, "nope").IsNotFound());
  EXPECT_EQ(ds->stats().get_not_found, 1u);
}

TEST_F(DataStoreTest, PutThenGetRoundTrips) {
  auto ds = MakeStore(SmallConfig());
  auto value = TestValue(1, 256);
  ASSERT_TRUE(SyncPut(sim_, *ds, "user1", value).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(SyncGet(sim_, *ds, "user1", &out).ok());
  EXPECT_EQ(out, value);
}

TEST_F(DataStoreTest, OverwriteReturnsNewest) {
  auto ds = MakeStore(SmallConfig());
  ASSERT_TRUE(SyncPut(sim_, *ds, "k", TestValue(1, 100)).ok());
  ASSERT_TRUE(SyncPut(sim_, *ds, "k", TestValue(2, 200)).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(SyncGet(sim_, *ds, "k", &out).ok());
  EXPECT_EQ(out, TestValue(2, 200));
}

TEST_F(DataStoreTest, DeleteHidesKey) {
  auto ds = MakeStore(SmallConfig());
  ASSERT_TRUE(SyncPut(sim_, *ds, "k", TestValue(1, 64)).ok());
  ASSERT_TRUE(SyncDel(sim_, *ds, "k").ok());
  EXPECT_TRUE(SyncGet(sim_, *ds, "k").IsNotFound());
}

TEST_F(DataStoreTest, DeleteOfMissingKeyIsOkAndCheap) {
  auto ds = MakeStore(SmallConfig());
  uint64_t writes_before = ds->stats().ssd_writes;
  EXPECT_TRUE(SyncDel(sim_, *ds, "ghost").ok());
  EXPECT_EQ(ds->stats().ssd_writes, writes_before);  // no IO for empty segment
}

TEST_F(DataStoreTest, NvmeAccessCountsMatchPaper) {
  // Paper §3.3: GET/PUT/DEL trigger 2/3/2 NVMe accesses in the common case.
  auto ds = MakeStore(SmallConfig());
  // Prime the segment so PUT takes the read-modify path.
  ASSERT_TRUE(SyncPut(sim_, *ds, "key-a", TestValue(1, 64)).ok());

  auto reads0 = ds->stats().ssd_reads;
  auto writes0 = ds->stats().ssd_writes;
  ASSERT_TRUE(SyncPut(sim_, *ds, "key-a", TestValue(2, 64)).ok());
  EXPECT_EQ(ds->stats().ssd_reads - reads0, 1u);   // head bucket read
  EXPECT_EQ(ds->stats().ssd_writes - writes0, 2u); // bucket + value appends

  reads0 = ds->stats().ssd_reads;
  writes0 = ds->stats().ssd_writes;
  ASSERT_TRUE(SyncGet(sim_, *ds, "key-a").ok());
  EXPECT_EQ(ds->stats().ssd_reads - reads0, 2u);   // bucket + value reads
  EXPECT_EQ(ds->stats().ssd_writes - writes0, 0u);

  reads0 = ds->stats().ssd_reads;
  writes0 = ds->stats().ssd_writes;
  ASSERT_TRUE(SyncDel(sim_, *ds, "key-a").ok());
  EXPECT_EQ(ds->stats().ssd_reads - reads0, 1u);   // bucket read
  EXPECT_EQ(ds->stats().ssd_writes - writes0, 1u); // bucket append only
}

TEST_F(DataStoreTest, ManyKeysAllReadable) {
  StoreConfig cfg = SmallConfig();
  cfg.num_segments = 128;
  auto ds = MakeStore(cfg);
  std::map<std::string, std::vector<uint8_t>> truth;
  for (int i = 0; i < 500; ++i) {
    std::string key = "user" + std::to_string(i);
    auto value = TestValue(i, 64 + i % 100);
    ASSERT_TRUE(SyncPut(sim_, *ds, key, value).ok()) << key;
    truth[key] = value;
  }
  for (auto& [key, value] : truth) {
    std::vector<uint8_t> out;
    ASSERT_TRUE(SyncGet(sim_, *ds, key, &out).ok()) << key;
    EXPECT_EQ(out, value) << key;
  }
}

TEST_F(DataStoreTest, ChainsGrowAndStayReadable) {
  // One segment forces every key into the same chain.
  StoreConfig cfg = SmallConfig();
  cfg.num_segments = 1;
  cfg.bucket_size = 512;  // ~ (512-32)/(13+7) = 24 items per bucket
  auto ds = MakeStore(cfg);
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(SyncPut(sim_, *ds, "key" + std::to_string(i), TestValue(i, 32)).ok());
  }
  EXPECT_GT(ds->segments().At(0).chain_len, 1);
  // Keys in older buckets require chain walks.
  std::vector<uint8_t> out;
  ASSERT_TRUE(SyncGet(sim_, *ds, "key0", &out).ok());
  EXPECT_EQ(out, TestValue(0, 32));
  EXPECT_GT(ds->stats().get_chain_extra_reads, 0u);
}

TEST_F(DataStoreTest, ChainOverflowReportsOutOfSpace) {
  StoreConfig cfg = SmallConfig();
  cfg.num_segments = 1;
  cfg.chain_bits = 2;  // max chain 3
  cfg.compaction_threshold = 1.1;  // never compact
  auto ds = MakeStore(cfg);
  Status last = Status::Ok();
  int i = 0;
  while (last.ok() && i < 500) {
    last = SyncPut(sim_, *ds, "key" + std::to_string(i), TestValue(i, 16));
    ++i;
  }
  EXPECT_EQ(last.code(), StatusCode::kOutOfSpace);
  EXPECT_GT(ds->stats().puts_failed_full, 0u);
}

TEST_F(DataStoreTest, KeyCompactionCollapsesChains) {
  StoreConfig cfg = SmallConfig();
  cfg.num_segments = 1;
  cfg.compaction_threshold = 1.1;  // manual control
  auto ds = MakeStore(cfg);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(SyncPut(sim_, *ds, "key" + std::to_string(i), TestValue(i, 32)).ok());
  }
  uint8_t chain_before = ds->segments().At(0).chain_len;
  ASSERT_GT(chain_before, 1);

  bool done = false;
  ds->ForceKeyCompaction([&](Status st) {
    EXPECT_TRUE(st.ok());
    done = true;
  });
  testutil::RunUntilFlag(sim_, done);
  ASSERT_TRUE(done);
  EXPECT_GT(ds->stats().segments_collapsed, 0u);

  // All keys still readable, and reading the oldest key no longer needs a
  // per-bucket chain walk (the array remainder is one IO).
  for (int i = 0; i < 60; ++i) {
    std::vector<uint8_t> out;
    ASSERT_TRUE(SyncGet(sim_, *ds, "key" + std::to_string(i), &out).ok()) << i;
    EXPECT_EQ(out, TestValue(i, 32));
  }
}

TEST_F(DataStoreTest, CompactionReclaimsKeyLogSpace) {
  StoreConfig cfg = SmallConfig();
  cfg.num_segments = 8;
  cfg.compaction_threshold = 1.1;
  cfg.compaction_chunk = 64 * 1024;
  auto ds = MakeStore(cfg);
  // Overwrite the same keys repeatedly: most bucket copies become garbage.
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(
          SyncPut(sim_, *ds, "k" + std::to_string(i), TestValue(round, 32)).ok());
    }
  }
  uint64_t used_before = ds->home().key_log->used();
  for (int pass = 0; pass < 4; ++pass) {
    bool done = false;
    ds->ForceKeyCompaction([&](Status) { done = true; });
    testutil::RunUntilFlag(sim_, done);
  }
  EXPECT_LT(ds->home().key_log->used(), used_before);
  // Stale bucket copies (not items) are what overwrites produce here: each
  // key lives in its segment's head bucket, updated in place, so collapse
  // keeps every item but discards all superseded bucket copies.
  EXPECT_GT(ds->stats().segments_collapsed, 0u);
  // Data intact.
  for (int i = 0; i < 16; ++i) {
    std::vector<uint8_t> out;
    ASSERT_TRUE(SyncGet(sim_, *ds, "k" + std::to_string(i), &out).ok());
    EXPECT_EQ(out, TestValue(19, 32));
  }
}

TEST_F(DataStoreTest, ValueCompactionRelocatesLiveValues) {
  StoreConfig cfg = SmallConfig();
  cfg.num_segments = 8;
  cfg.compaction_threshold = 1.1;
  cfg.compaction_chunk = 32 * 1024;
  auto ds = MakeStore(cfg);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(
          SyncPut(sim_, *ds, "k" + std::to_string(i), TestValue(round * 100 + i, 200))
              .ok());
    }
  }
  uint64_t vhead_before = ds->home().value_log->head();
  bool done = false;
  ds->ForceValueCompaction([&](Status st) {
    EXPECT_TRUE(st.ok());
    done = true;
  });
  testutil::RunUntilFlag(sim_, done);
  ASSERT_TRUE(done);
  EXPECT_GT(ds->home().value_log->head(), vhead_before);
  EXPECT_EQ(ds->stats().value_compactions, 1u);
  // Every key still returns its newest value after relocation.
  for (int i = 0; i < 12; ++i) {
    std::vector<uint8_t> out;
    ASSERT_TRUE(SyncGet(sim_, *ds, "k" + std::to_string(i), &out).ok());
    EXPECT_EQ(out, TestValue(900 + i, 200));
  }
}

TEST_F(DataStoreTest, AutoCompactionKeepsStoreWritableForever) {
  // Small logs + threshold-triggered compaction: sustained overwrite load
  // must never hit kOutOfSpace.
  StoreConfig cfg = SmallConfig();
  cfg.num_segments = 16;
  cfg.compaction_threshold = 0.5;
  cfg.compaction_chunk = 16 * 1024;
  key_log_ = std::make_unique<log::CircularLog>(device_, 0, 256 << 10);
  value_log_ = std::make_unique<log::CircularLog>(device_, 8 << 20, 256 << 10);
  LogSet home{0, key_log_.get(), value_log_.get()};
  auto ds = std::make_unique<DataStore>(sim_, core_, home, cfg);

  for (int round = 0; round < 60; ++round) {
    for (int i = 0; i < 32; ++i) {
      Status st = SyncPut(sim_, *ds, "key" + std::to_string(i),
                          TestValue(round, 128));
      ASSERT_TRUE(st.ok()) << "round " << round << " key " << i << ": "
                           << st.ToString();
    }
  }
  sim_.Run();  // let trailing compactions finish
  EXPECT_GT(ds->stats().key_compactions + ds->stats().value_compactions, 0u);
  for (int i = 0; i < 32; ++i) {
    std::vector<uint8_t> out;
    ASSERT_TRUE(SyncGet(sim_, *ds, "key" + std::to_string(i), &out).ok());
    EXPECT_EQ(out, TestValue(59, 128));
  }
}

TEST_F(DataStoreTest, ConcurrentOpsOnSameSegmentSerialize) {
  StoreConfig cfg = SmallConfig();
  cfg.num_segments = 1;
  auto ds = MakeStore(cfg);
  int completed = 0;
  // Issue 20 concurrent PUTs to the same segment; the lock bit serializes
  // them and every one must succeed.
  for (int i = 0; i < 20; ++i) {
    ds->Put("key" + std::to_string(i), TestValue(i, 32), [&](Status st) {
      EXPECT_TRUE(st.ok());
      ++completed;
    });
  }
  sim_.Run();
  EXPECT_EQ(completed, 20);
  EXPECT_GT(ds->stats().lock_waits, 0u);
  for (int i = 0; i < 20; ++i) {
    std::vector<uint8_t> out;
    ASSERT_TRUE(SyncGet(sim_, *ds, "key" + std::to_string(i), &out).ok());
    EXPECT_EQ(out, TestValue(i, 32));
  }
}

TEST_F(DataStoreTest, GetsConcurrentWithCompactionRetryAndSucceed) {
  StoreConfig cfg = SmallConfig();
  cfg.num_segments = 4;
  cfg.compaction_threshold = 1.1;
  auto ds = MakeStore(cfg);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(SyncPut(sim_, *ds, "key" + std::to_string(i), TestValue(i, 64)).ok());
  }
  // Fire a compaction and a burst of GETs into the same event window.
  bool compaction_done = false;
  ds->ForceKeyCompaction([&](Status) { compaction_done = true; });
  int got = 0;
  for (int i = 0; i < 64; ++i) {
    ds->Get("key" + std::to_string(i), [&, i](Status st, std::vector<uint8_t> v) {
      EXPECT_TRUE(st.ok()) << "key" << i << ": " << st.ToString();
      if (st.ok()) {
        EXPECT_EQ(v, TestValue(i, 64));
      }
      ++got;
    });
  }
  sim_.Run();
  EXPECT_TRUE(compaction_done);
  EXPECT_EQ(got, 64);
}

// ---------------------------------------------------------------------------
// Data swapping (§3.6)
// ---------------------------------------------------------------------------

class SwapTest : public DataStoreTest {
 protected:
  std::unique_ptr<DataStore> MakeSwappingStore() {
    StoreConfig cfg = SmallConfig();
    cfg.num_segments = 16;
    cfg.compaction_threshold = 1.1;  // manual merge-back
    auto ds = MakeStore(cfg);
    donor_key_ = std::make_unique<log::CircularLog>(donor_device_, 0, 4 << 20);
    donor_value_ = std::make_unique<log::CircularLog>(donor_device_, 4 << 20, 4 << 20);
    ds->AddLogSet(LogSet{1, donor_key_.get(), donor_value_.get()});
    return ds;
  }
  std::unique_ptr<log::CircularLog> donor_key_;
  std::unique_ptr<log::CircularLog> donor_value_;
};

TEST_F(SwapTest, SwappedPutsLandOnDonorAndStayReadable) {
  auto ds = MakeSwappingStore();
  ASSERT_TRUE(SyncPut(sim_, *ds, "home-key", TestValue(1, 64)).ok());

  ds->SetSwapTarget(1);
  ASSERT_TRUE(SyncPut(sim_, *ds, "swapped-key", TestValue(2, 64)).ok());
  EXPECT_GT(ds->stats().swap_puts, 0u);
  EXPECT_GT(ds->swapped_segments(), 0u);
  EXPECT_GT(donor_key_->used(), 0u);
  EXPECT_GT(donor_value_->used(), 0u);

  // Reads follow the SSD id transparently.
  std::vector<uint8_t> out;
  ASSERT_TRUE(SyncGet(sim_, *ds, "swapped-key", &out).ok());
  EXPECT_EQ(out, TestValue(2, 64));
  ASSERT_TRUE(SyncGet(sim_, *ds, "home-key", &out).ok());
  EXPECT_EQ(out, TestValue(1, 64));
}

TEST_F(SwapTest, MergeBackRelocatesEverythingHome) {
  auto ds = MakeSwappingStore();
  ds->SetSwapTarget(1);
  for (int i = 0; i < 24; ++i) {
    ASSERT_TRUE(SyncPut(sim_, *ds, "key" + std::to_string(i), TestValue(i, 64)).ok());
  }
  ASSERT_GT(ds->swapped_segments(), 0u);
  ds->SetSwapTarget(std::nullopt);

  // Merge-back may take several key-compaction runs (kSwapMergePerRun cap).
  for (int pass = 0; pass < 6 && ds->swapped_segments() > 0; ++pass) {
    bool done = false;
    ds->ForceKeyCompaction([&](Status) { done = true; });
    testutil::RunUntilFlag(sim_, done);
  }
  EXPECT_EQ(ds->swapped_segments(), 0u);

  // Everything is home now: donor logs can be discarded and the data must
  // still read back correctly from the home SSD.
  donor_key_->Reset();
  donor_value_->Reset();
  for (int i = 0; i < 24; ++i) {
    std::vector<uint8_t> out;
    ASSERT_TRUE(SyncGet(sim_, *ds, "key" + std::to_string(i), &out).ok()) << i;
    EXPECT_EQ(out, TestValue(i, 64));
  }
}

TEST_F(SwapTest, SwapToUnknownDonorIsIgnored) {
  auto ds = MakeSwappingStore();
  ds->SetSwapTarget(7);  // never registered
  EXPECT_FALSE(ds->swap_target().has_value());
}

// ---------------------------------------------------------------------------
// COPY (§3.8)
// ---------------------------------------------------------------------------

TEST_F(DataStoreTest, CopyOutStreamsLiveFilteredItems) {
  StoreConfig cfg = SmallConfig();
  cfg.num_segments = 16;
  auto ds = MakeStore(cfg);
  std::set<std::string> expected;
  for (int i = 0; i < 40; ++i) {
    std::string key = "key" + std::to_string(i);
    ASSERT_TRUE(SyncPut(sim_, *ds, key, TestValue(i, 48)).ok());
    if (i % 2 == 0) expected.insert(key);
  }
  // Delete a couple of even keys: they must not be copied.
  ASSERT_TRUE(SyncDel(sim_, *ds, "key0").ok());
  expected.erase("key0");

  std::set<std::string> copied;
  bool done = false;
  ds->CopyOut(
      [](std::string_view key) {
        // Filter: even-numbered keys only.
        int n = std::stoi(std::string(key.substr(3)));
        return n % 2 == 0;
      },
      [&](std::string key, std::vector<uint8_t> value) {
        EXPECT_FALSE(value.empty());
        copied.insert(key);
      },
      [&](Status st) {
        EXPECT_TRUE(st.ok());
        done = true;
      });
  testutil::RunUntilFlag(sim_, done);
  ASSERT_TRUE(done);
  EXPECT_EQ(copied, expected);
}

TEST_F(DataStoreTest, CopyOutEmptyStore) {
  auto ds = MakeStore(SmallConfig());
  bool done = false;
  int items = 0;
  ds->CopyOut([](std::string_view) { return true; },
              [&](std::string, std::vector<uint8_t>) { ++items; },
              [&](Status st) {
                EXPECT_TRUE(st.ok());
                done = true;
              });
  testutil::RunUntilFlag(sim_, done);
  EXPECT_TRUE(done);
  EXPECT_EQ(items, 0);
}

}  // namespace
}  // namespace leed::store
