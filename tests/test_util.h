// Shared helpers for driving the event loop inside tests: synchronous
// wrappers that issue an async store op and run the simulator until its
// callback fires.

#pragma once

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/simulator.h"

namespace leed::testutil {

// Seed for randomized tests: `default_seed` unless the LEED_TEST_SEED
// environment variable overrides it (decimal or 0x-hex). Always announced
// on stdout, so a failing run's log (ctest --output-on-failure) names the
// exact seed to replay: LEED_TEST_SEED=<seed> ./some_test.
inline uint64_t TestSeed(uint64_t default_seed) {
  uint64_t seed = default_seed;
  if (const char* env = std::getenv("LEED_TEST_SEED"); env && *env) {
    seed = std::strtoull(env, nullptr, 0);
  }
  std::printf("LEED_TEST_SEED=%llu\n", static_cast<unsigned long long>(seed));
  return seed;
}

// Run the simulator until `done` is true or the event queue drains.
// Returns true if `done` became true.
inline bool RunUntilFlag(sim::Simulator& simulator, const bool& done,
                         SimTime max_time = 0) {
  while (!done) {
    if (max_time > 0 && simulator.Now() > max_time) return false;
    // Stop once only daemon events (periodic timers) remain — they would
    // tick forever without ever setting the flag.
    if (simulator.events_pending() == 0) break;
    if (!simulator.Step()) break;
  }
  return done;
}

// Synchronous wrappers over callback-style KV interfaces. `Store` must
// expose Get/Put/Del with the leed::store::DataStore signatures.
template <typename Store>
Status SyncPut(sim::Simulator& simulator, Store& store, const std::string& key,
               std::vector<uint8_t> value) {
  Status result = Status::Internal("callback never ran");
  bool done = false;
  store.Put(key, std::move(value), [&](Status st) {
    result = std::move(st);
    done = true;
  });
  RunUntilFlag(simulator, done);
  EXPECT_TRUE(done) << "PUT callback did not fire";
  return result;
}

template <typename Store>
Status SyncDel(sim::Simulator& simulator, Store& store, const std::string& key) {
  Status result = Status::Internal("callback never ran");
  bool done = false;
  store.Del(key, [&](Status st) {
    result = std::move(st);
    done = true;
  });
  RunUntilFlag(simulator, done);
  EXPECT_TRUE(done) << "DEL callback did not fire";
  return result;
}

template <typename Store>
Status SyncGet(sim::Simulator& simulator, Store& store, const std::string& key,
               std::vector<uint8_t>* value_out = nullptr) {
  Status result = Status::Internal("callback never ran");
  bool done = false;
  store.Get(key, [&](Status st, std::vector<uint8_t> value) {
    result = std::move(st);
    if (value_out) *value_out = std::move(value);
    done = true;
  });
  RunUntilFlag(simulator, done);
  EXPECT_TRUE(done) << "GET callback did not fire";
  return result;
}

// A deterministic value whose bytes depend on (tag, size).
inline std::vector<uint8_t> TestValue(uint64_t tag, size_t size) {
  std::vector<uint8_t> v(size);
  for (size_t i = 0; i < size; ++i) {
    v[i] = static_cast<uint8_t>((tag * 131 + i * 17 + 7) & 0xff);
  }
  return v;
}

}  // namespace leed::testutil
