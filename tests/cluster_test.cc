// Tests for the consistent-hash ring, membership views, and the control
// plane's transition machinery (join/leave/failure with COPY commissions).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cluster/control_plane.h"
#include "cluster/hash_ring.h"
#include "cluster/membership.h"
#include "cluster/wire.h"
#include "leed/cluster_sim.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "store/superblock.h"
#include "test_util.h"

namespace leed::cluster {
namespace {

// ---------------------------------------------------------------------------
// HashRing
// ---------------------------------------------------------------------------

TEST(HashRingTest, PrimaryIsClockwise) {
  HashRing ring;
  ring.Insert(1, 100);
  ring.Insert(2, 200);
  ring.Insert(3, 300);
  EXPECT_EQ(ring.PrimaryOf(50), 1u);
  EXPECT_EQ(ring.PrimaryOf(100), 1u);  // at-or-after
  EXPECT_EQ(ring.PrimaryOf(150), 2u);
  EXPECT_EQ(ring.PrimaryOf(301), 1u);  // wraps
}

TEST(HashRingTest, ChainIsConsecutiveDistinct) {
  HashRing ring;
  for (VNodeId i = 0; i < 5; ++i) ring.Insert(i, i * 1000);
  auto chain = ring.ChainOf(1500, 3);
  EXPECT_EQ(chain, (std::vector<VNodeId>{2, 3, 4}));
  auto wrap = ring.ChainOf(4500, 3);
  EXPECT_EQ(wrap, (std::vector<VNodeId>{0, 1, 2}));
}

TEST(HashRingTest, ChainClampsToRingSize) {
  HashRing ring;
  ring.Insert(7, 10);
  ring.Insert(8, 20);
  auto chain = ring.ChainOf(0, 5);
  EXPECT_EQ(chain.size(), 2u);
}

TEST(HashRingTest, ArcAndMembershipChecks) {
  HashRing ring;
  ring.Insert(1, 100);
  ring.Insert(2, 200);
  auto arc2 = ring.ArcOf(2);
  EXPECT_EQ(arc2.first, 100u);
  EXPECT_EQ(arc2.second, 200u);
  EXPECT_TRUE(ring.InArcOf(2, 150));
  EXPECT_FALSE(ring.InArcOf(2, 100));  // exclusive start
  EXPECT_TRUE(ring.InArcOf(2, 200));   // inclusive end
  // Wrapping arc of node 1: (200, 100].
  EXPECT_TRUE(ring.InArcOf(1, 50));
  EXPECT_TRUE(ring.InArcOf(1, 300));
  EXPECT_FALSE(ring.InArcOf(1, 150));
}

TEST(HashRingTest, SuccessorWraps) {
  HashRing ring;
  ring.Insert(1, 100);
  ring.Insert(2, 200);
  EXPECT_EQ(ring.SuccessorOf(1), 2u);
  EXPECT_EQ(ring.SuccessorOf(2), 1u);
  HashRing solo;
  solo.Insert(9, 5);
  EXPECT_EQ(solo.SuccessorOf(9), kInvalidVNode);
}

TEST(HashRingTest, WidestArcMidpointHalvesBiggestGap) {
  // Positions clustered low: the widest arc is the wrapping one
  // (10000, 1000], width ~2^64; its midpoint is 10000 + width/2.
  HashRing ring;
  ring.Insert(1, 1000);
  ring.Insert(2, 2000);
  ring.Insert(3, 10000);
  uint64_t wrap_width = 1000 - 10000;  // modular arithmetic
  EXPECT_EQ(ring.WidestArcMidpoint(), 10000 + wrap_width / 2);

  // Spread positions: the widest arc is the wrap from the last position
  // back to the first; verify the midpoint lands exactly halfway along it.
  HashRing spread;
  const uint64_t a = UINT64_MAX / 4, b = UINT64_MAX / 2, c = UINT64_MAX / 2 + 1000;
  spread.Insert(1, a);
  spread.Insert(2, b);
  spread.Insert(3, c);
  const uint64_t widest = a - c;  // modular width of (c, a]
  EXPECT_EQ(spread.WidestArcMidpoint(), c + widest / 2);
}

TEST(HashRingTest, RemoveRestoresCoverage) {
  HashRing ring;
  ring.Insert(1, 100);
  ring.Insert(2, 200);
  EXPECT_TRUE(ring.Remove(2));
  EXPECT_FALSE(ring.Remove(2));
  EXPECT_EQ(ring.PrimaryOf(150), 1u);
}

TEST(HashRingTest, DuplicateInsertRejected) {
  HashRing ring;
  EXPECT_TRUE(ring.Insert(1, 100));
  EXPECT_FALSE(ring.Insert(1, 200));  // id reuse
  EXPECT_FALSE(ring.Insert(2, 100));  // position collision
}

// ---------------------------------------------------------------------------
// ClusterView
// ---------------------------------------------------------------------------

ClusterView MakeView(int n, uint32_t r = 3) {
  ClusterView v;
  v.epoch = 1;
  v.replication_factor = r;
  for (int i = 0; i < n; ++i) {
    VNodeInfo info;
    info.id = i;
    info.owner_node = i % 3;
    info.local_store = i / 3;
    info.position = static_cast<uint64_t>(i) * (UINT64_MAX / n);
    info.state = VNodeState::kRunning;
    v.vnodes[i] = info;
  }
  return v;
}

TEST(ClusterViewTest, ChainSpansDistinctVnodes) {
  ClusterView v = MakeView(6);
  auto chain = v.ChainForKey("somekey");
  EXPECT_EQ(chain.size(), 3u);
  std::set<VNodeId> uniq(chain.begin(), chain.end());
  EXPECT_EQ(uniq.size(), 3u);
}

TEST(ClusterViewTest, LeavingExcludedJoiningIncluded) {
  ClusterView v = MakeView(4);
  v.vnodes[0].state = VNodeState::kLeaving;
  v.vnodes[1].state = VNodeState::kJoining;
  HashRing serving = v.ServingRing();
  EXPECT_FALSE(serving.Contains(0));
  EXPECT_TRUE(serving.Contains(1));
  HashRing running = v.RunningRing();
  EXPECT_FALSE(running.Contains(1));
}

TEST(ClusterViewTest, FillingRangeLookup) {
  ClusterView v = MakeView(3);
  v.filling.push_back(FillingRange{1, 100, 200, 1});
  EXPECT_TRUE(v.IsFilling(1, 150));
  EXPECT_FALSE(v.IsFilling(1, 250));
  EXPECT_FALSE(v.IsFilling(2, 150));
  // Wrapping range.
  v.filling.push_back(FillingRange{2, 5000, 50, 1});
  EXPECT_TRUE(v.IsFilling(2, 6000));
  EXPECT_TRUE(v.IsFilling(2, 20));
  EXPECT_FALSE(v.IsFilling(2, 3000));
}

// ---------------------------------------------------------------------------
// ControlPlane
// ---------------------------------------------------------------------------

class ControlPlaneTest : public ::testing::Test {
 protected:
  struct FakeNode {
    sim::EndpointId ep;
    std::vector<ClusterView> views;
    std::vector<CopyCommandMsg> copies;
  };

  ControlPlaneTest() : net_(sim_) {}

  void Setup(int nodes, uint32_t r = 3, uint32_t stores = 2) {
    ControlPlaneConfig cfg;
    cfg.replication_factor = r;
    cfg.monitor_heartbeats = false;
    cp_ = std::make_unique<ControlPlane>(sim_, net_, cfg);
    for (int i = 0; i < nodes; ++i) {
      auto node = std::make_unique<FakeNode>();
      node->ep = net_.AddEndpoint(sim::NicSpec{});
      FakeNode* raw = node.get();
      net_.SetReceiver(node->ep, [this, raw](sim::Message m) {
        if (auto* v = std::any_cast<ViewUpdateMsg>(&m.payload)) {
          raw->views.push_back(v->view);
        } else if (auto* c = std::any_cast<CopyCommandMsg>(&m.payload)) {
          raw->copies.push_back(*c);
          // Fake an instant copy: report done immediately.
          CopyDoneMsg done;
          done.copy_id = c->copy_id;
          done.dst = c->dst;
          net_.Send(raw->ep, cp_->endpoint(), 64, done);
        }
      });
      cp_->RegisterNode(i, node->ep);
      nodes_.push_back(std::move(node));
    }
    uint64_t total = static_cast<uint64_t>(nodes) * stores;
    for (uint64_t k = 0; k < total; ++k) {
      cp_->Bootstrap(static_cast<uint32_t>(k % nodes),
                     static_cast<uint32_t>(k / nodes), k * (UINT64_MAX / total));
    }
    cp_->Start();
    sim_.Run();
  }

  sim::Simulator sim_;
  sim::Network net_;
  std::unique_ptr<ControlPlane> cp_;
  std::vector<std::unique_ptr<FakeNode>> nodes_;
};

TEST_F(ControlPlaneTest, BootstrapBroadcastsInitialView) {
  Setup(3);
  for (auto& n : nodes_) {
    ASSERT_FALSE(n->views.empty());
    EXPECT_EQ(n->views.back().vnodes.size(), 6u);
    EXPECT_EQ(n->views.back().epoch, 1u);
  }
}

TEST_F(ControlPlaneTest, JoinCommissionsRCopiesThenRuns) {
  Setup(3, /*r=*/3);
  VNodeId v = cp_->StartJoin(/*owner=*/0, /*store=*/7);
  sim_.Run();
  // The transition finished (fake nodes ack copies instantly).
  EXPECT_FALSE(cp_->TransitionInProgress());
  const VNodeInfo* info = cp_->view().Find(v);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->state, VNodeState::kRunning);
  EXPECT_TRUE(cp_->view().filling.empty());
  // R chains were affected -> R copies commissioned.
  EXPECT_EQ(cp_->stats().copies_commissioned, 3u);
  EXPECT_EQ(cp_->stats().joins_completed, 1u);
  // Mid-transition view reached nodes: some view carried JOINING + filling.
  bool saw_joining = false;
  for (auto& n : nodes_) {
    for (auto& view : n->views) {
      const VNodeInfo* vi = view.Find(v);
      if (vi && vi->state == VNodeState::kJoining && !view.filling.empty()) {
        saw_joining = true;
      }
    }
  }
  EXPECT_TRUE(saw_joining);
}

TEST_F(ControlPlaneTest, LeaveDrainsThenDeletes) {
  Setup(3, 3);
  VNodeId victim = 0;
  uint64_t epoch_before = cp_->view().epoch;
  cp_->StartLeave(victim);
  sim_.Run();
  EXPECT_EQ(cp_->view().Find(victim), nullptr);
  EXPECT_GT(cp_->view().epoch, epoch_before);
  EXPECT_EQ(cp_->stats().leaves_completed, 1u);
  EXPECT_GT(cp_->stats().copies_commissioned, 0u);
  EXPECT_TRUE(cp_->view().filling.empty());
}

TEST_F(ControlPlaneTest, FailNodeRemovesAllItsVnodes) {
  Setup(3, 3);
  cp_->FailNode(1);
  sim_.Run();
  for (const auto& [id, info] : cp_->view().vnodes) {
    EXPECT_NE(info.owner_node, 1u) << "vnode " << id << " survived on dead node";
  }
  EXPECT_GT(cp_->stats().copies_commissioned, 0u);
}

TEST_F(ControlPlaneTest, CopySourcesNeverOnDeadNode) {
  Setup(3, 3);
  cp_->FailNode(2);
  sim_.Run();
  for (auto& n : nodes_) {
    for (auto& c : n->copies) {
      const VNodeInfo* src = nullptr;
      // Look up the source in any view we received (it may be gone now).
      for (auto& view : n->views) {
        if (const VNodeInfo* i = view.Find(c.src)) src = i;
      }
      if (src) {
        EXPECT_NE(src->owner_node, 2u);
      }
    }
  }
}

TEST_F(ControlPlaneTest, FailStoreRemovesOnlyThatStoresVnodes) {
  Setup(3, 3);
  cp_->FailStore(/*node_id=*/1, /*local_store=*/0);
  sim_.Run();
  // Store-scoped failure domain: (1,0)'s vnode left the ring, (1,1)'s is
  // still serving — the node was NOT failed wholesale.
  bool node1_survives = false;
  for (const auto& [id, info] : cp_->view().vnodes) {
    EXPECT_FALSE(info.owner_node == 1u && info.local_store == 0u)
        << "vnode " << id << " survived on the failed store";
    if (info.owner_node == 1u) node1_survives = true;
  }
  EXPECT_TRUE(node1_survives) << "failover took the whole node down";
  EXPECT_EQ(cp_->stats().store_failures, 1u);
  EXPECT_EQ(cp_->stats().vnodes_failed_over, 1u);
  EXPECT_GT(cp_->stats().copies_commissioned, 0u);
  EXPECT_TRUE(cp_->view().filling.empty());

  // Same store again: a duplicate report (every store on a dead SSD
  // reports once per engine restart attempt) must be a no-op.
  cp_->FailStore(1, 0);
  sim_.Run();
  EXPECT_EQ(cp_->stats().store_failures, 1u);

  // The node keeps heartbeating for its healthy stores; those heartbeats
  // are NOT stale (the node is not administratively dead).
  net_.Send(nodes_[1]->ep, cp_->endpoint(), 32, HeartbeatMsg{1});
  sim_.Run();
  EXPECT_EQ(cp_->stats().stale_heartbeats_ignored, 0u);

  // Its second store can fail over independently later.
  cp_->FailStore(1, 1);
  sim_.Run();
  EXPECT_EQ(cp_->stats().store_failures, 2u);
  for (const auto& [id, info] : cp_->view().vnodes) {
    EXPECT_NE(info.owner_node, 1u) << "vnode " << id << " outlived both stores";
  }
}

TEST_F(ControlPlaneTest, HeartbeatTimeoutTriggersFailure) {
  ControlPlaneConfig cfg;
  cfg.replication_factor = 2;
  cfg.monitor_heartbeats = true;
  cfg.heartbeat_period = 10 * kMillisecond;
  cfg.failure_timeout = 30 * kMillisecond;
  cp_ = std::make_unique<ControlPlane>(sim_, net_, cfg);
  // Two fake nodes; only node 0 heartbeats.
  for (int i = 0; i < 2; ++i) {
    auto node = std::make_unique<FakeNode>();
    node->ep = net_.AddEndpoint(sim::NicSpec{});
    FakeNode* raw = node.get();
    net_.SetReceiver(node->ep, [this, raw](sim::Message m) {
      if (auto* c = std::any_cast<CopyCommandMsg>(&m.payload)) {
        CopyDoneMsg done;
        done.copy_id = c->copy_id;
        done.dst = c->dst;
        net_.Send(raw->ep, cp_->endpoint(), 64, done);
      }
    });
    cp_->RegisterNode(i, node->ep);
    nodes_.push_back(std::move(node));
  }
  for (uint64_t k = 0; k < 4; ++k) {
    cp_->Bootstrap(static_cast<uint32_t>(k % 2), static_cast<uint32_t>(k / 2),
                   k * (UINT64_MAX / 4));
  }
  cp_->Start();
  sim::PeriodicTimer hb(sim_, 10 * kMillisecond, [&] {
    net_.Send(nodes_[0]->ep, cp_->endpoint(), 32, HeartbeatMsg{0});
  });
  hb.Start();
  sim_.RunUntil(200 * kMillisecond);
  EXPECT_GE(cp_->stats().failures_detected, 1u);
  for (const auto& [id, info] : cp_->view().vnodes) {
    (void)id;
    EXPECT_EQ(info.owner_node, 0u);
  }
  hb.Stop();
}

// False-positive hardening: once a node is declared dead, late heartbeats
// (a stalled node waking back up) must not resurrect it or fail it twice,
// and copy acks from its stale endpoint must be rejected — the blank
// replacement re-registers under the same id and must not inherit them.
TEST_F(ControlPlaneTest, DeadNodeLateMessagesAreIgnored) {
  ControlPlaneConfig cfg;
  cfg.replication_factor = 2;
  cfg.monitor_heartbeats = true;
  cfg.heartbeat_period = 10 * kMillisecond;
  cfg.failure_timeout = 30 * kMillisecond;
  cp_ = std::make_unique<ControlPlane>(sim_, net_, cfg);
  for (int i = 0; i < 2; ++i) {
    auto node = std::make_unique<FakeNode>();
    node->ep = net_.AddEndpoint(sim::NicSpec{});
    FakeNode* raw = node.get();
    net_.SetReceiver(node->ep, [this, raw](sim::Message m) {
      if (auto* c = std::any_cast<CopyCommandMsg>(&m.payload)) {
        CopyDoneMsg done;
        done.copy_id = c->copy_id;
        done.dst = c->dst;
        net_.Send(raw->ep, cp_->endpoint(), 64, done);
      }
    });
    cp_->RegisterNode(i, node->ep);
    nodes_.push_back(std::move(node));
  }
  for (uint64_t k = 0; k < 4; ++k) {
    cp_->Bootstrap(static_cast<uint32_t>(k % 2), static_cast<uint32_t>(k / 2),
                   k * (UINT64_MAX / 4));
  }
  cp_->Start();
  // Node 0 heartbeats throughout; node 1 only "wakes up" after it has
  // already been declared dead.
  sim::PeriodicTimer hb0(sim_, 10 * kMillisecond, [&] {
    net_.Send(nodes_[0]->ep, cp_->endpoint(), 32, HeartbeatMsg{0});
  });
  hb0.Start();
  sim_.RunUntil(100 * kMillisecond);
  ASSERT_EQ(cp_->stats().failures_detected, 1u);

  sim::PeriodicTimer hb1(sim_, 10 * kMillisecond, [&] {
    net_.Send(nodes_[1]->ep, cp_->endpoint(), 32, HeartbeatMsg{1});
  });
  hb1.Start();
  sim_.RunUntil(200 * kMillisecond);
  hb0.Stop();
  hb1.Stop();

  // The late heartbeats were ignored: not failed a second time, not
  // resurrected into the ring.
  EXPECT_EQ(cp_->stats().failures_detected, 1u);
  EXPECT_GT(cp_->stats().stale_heartbeats_ignored, 0u);
  for (const auto& [id, info] : cp_->view().vnodes) {
    (void)id;
    EXPECT_EQ(info.owner_node, 0u);
  }

  // A copy ack arriving from the dead node's endpoint is rejected too.
  uint64_t rejected_before = cp_->stats().stale_copy_acks_rejected;
  CopyDoneMsg stale;
  stale.copy_id = 1;
  stale.dst = 0;
  net_.Send(nodes_[1]->ep, cp_->endpoint(), 64, stale);
  sim_.Run();
  EXPECT_GT(cp_->stats().stale_copy_acks_rejected, rejected_before);
}

TEST_F(ControlPlaneTest, ViewRequestGetsReply) {
  Setup(2, 2);
  sim::EndpointId client = net_.AddEndpoint(sim::NicSpec{});
  bool got = false;
  net_.SetReceiver(client, [&](sim::Message m) {
    if (std::any_cast<ViewUpdateMsg>(&m.payload)) got = true;
  });
  ViewRequestMsg req;
  req.reply_to = client;
  net_.Send(client, cp_->endpoint(), 32, req);
  sim_.Run();
  EXPECT_TRUE(got);
}

// ---------------------------------------------------------------------------
// Crash-restart recovery (full cluster)
// ---------------------------------------------------------------------------

// Power-cut a node while one of its stores is mid-compaction, bring it
// back through superblock + extended-scan recovery, and verify that every
// acknowledged write is still readable. Compaction rewrites the key log
// under the crash, so this exercises recovery over a half-merged log.
TEST(ClusterCrashRestartTest, KillDuringCompactionKeepsAckedKeys) {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.num_clients = 1;
  cfg.seed = 0xc0de;
  cfg.node.platform = sim::StingrayJbof();
  cfg.node.stack = StackKind::kLeed;
  cfg.node.engine.ssd_count = 2;
  cfg.node.engine.stores_per_ssd = 2;
  cfg.node.engine.ssd = sim::Dct983Spec();
  cfg.node.engine.ssd.capacity_bytes = 1ull << 30;
  cfg.node.engine.ssd.latency_jitter = 0;
  cfg.node.engine.ssd.slow_io_prob = 0;
  // Few segments + tiny log partitions: the logs cross the compaction
  // threshold quickly, so the crash lands inside a live merge.
  cfg.node.engine.store_template.num_segments = 16;
  cfg.node.engine.store_template.bucket_size = 512;
  cfg.node.engine.store_template.compaction_threshold = 0.3;
  cfg.node.engine.partition_bytes = store::kSuperblockRegionBytes + 256 * 1024;
  cfg.node.engine.checkpoint_period = 5 * kMillisecond;
  cfg.client.stores_per_ssd = 2;
  cfg.client.request_timeout = 10 * kMillisecond;
  cfg.control_plane.replication_factor = 3;
  cfg.control_plane.heartbeat_period = 5 * kMillisecond;
  cfg.control_plane.failure_timeout = 25 * kMillisecond;

  ClusterSim cluster(cfg);
  cluster.Bootstrap();
  sim::Simulator& sim = cluster.simulator();

  auto compacting = [&](uint32_t node_id) {
    engine::IoEngine* eng = cluster.node(node_id).leed_engine();
    for (uint32_t s = 0; s < eng->num_stores(); ++s) {
      if (eng->data_store(s).compaction_running()) return true;
    }
    return false;
  };

  std::map<std::string, std::vector<uint8_t>> ledger;
  auto put = [&](int i) {
    std::string key = "ck" + std::to_string(i);
    std::vector<uint8_t> value = testutil::TestValue(i, 96);
    bool done = false;
    Status st = Status::Internal("pending");
    cluster.client(0).Put(key, value, [&](Status s, SimTime) {
      st = std::move(s);
      done = true;
    });
    testutil::RunUntilFlag(sim, done);
    EXPECT_TRUE(done);
    if (st.ok()) ledger[key] = std::move(value);
  };

  // Hammer writes until node 2 is mid-compaction, then pull its power.
  bool crashed = false;
  for (int i = 0; i < 3000 && !crashed; ++i) {
    put(i);
    if (compacting(2)) {
      cluster.CrashNode(2);
      crashed = true;
    }
  }
  ASSERT_TRUE(crashed) << "workload never triggered a compaction on node 2";
  ASSERT_FALSE(ledger.empty());

  // Keep writing while the node is down (chains repair to the survivors).
  for (int i = 10000; i < 10150; ++i) put(i);

  cluster.RestartNode(2);
  EXPECT_FALSE(cluster.node(2).crashed());
  sim.RunUntil(sim.Now() + 400 * kMillisecond);

  // Every acknowledged write — before, during, and after the crash — must
  // still be readable.
  for (const auto& [key, value] : ledger) {
    Status st = Status::Internal("pending");
    std::vector<uint8_t> out;
    for (int attempt = 0; attempt < 5; ++attempt) {
      bool done = false;
      cluster.client(0).Get(key, [&](Status s, std::vector<uint8_t> v, SimTime) {
        st = std::move(s);
        out = std::move(v);
        done = true;
      });
      testutil::RunUntilFlag(sim, done);
      ASSERT_TRUE(done);
      if (st.ok()) break;
      sim.RunUntil(sim.Now() + 20 * kMillisecond);
    }
    ASSERT_TRUE(st.ok()) << "acked write lost: " << key << " -> " << st.ToString();
    EXPECT_EQ(out, value) << key;
  }
}

}  // namespace
}  // namespace leed::cluster
