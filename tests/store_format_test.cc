// Unit tests for the on-flash format (buckets, key items, value entries)
// and the SegTbl.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "store/format.h"
#include "store/segment_table.h"

namespace leed::store {
namespace {

KeyItem MakeItem(const std::string& key, uint32_t vlen, uint64_t voff,
                 uint8_t ssd = 0) {
  KeyItem it;
  it.key = key;
  it.value_len = vlen;
  it.value_offset = voff;
  it.value_ssd = ssd;
  return it;
}

// ---------------------------------------------------------------------------
// Bucket encode/decode
// ---------------------------------------------------------------------------

TEST(BucketFormatTest, RoundTripsHeaderAndItems) {
  Bucket b;
  b.header.segment_id = 77;
  b.header.tag = 0xdeadbeef;
  b.header.chain_len = 3;
  b.header.position = 1;
  b.header.contiguous = 1;
  b.header.prev_offset = 0x123456789aULL;
  b.header.prev_ssd = 2;
  b.header.log_head = 111;
  b.header.log_tail = 222;
  b.items.push_back(MakeItem("alpha", 100, 5000, 1));
  b.items.push_back(MakeItem("beta", 0, 0));  // tombstone
  b.header.item_count = 2;

  auto encoded = EncodeBucket(b, 512);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded.value().size(), 512u);

  auto decoded = DecodeBucket(encoded.value(), 0, 512);
  ASSERT_TRUE(decoded.ok());
  const Bucket& d = decoded.value();
  EXPECT_EQ(d.header.segment_id, 77u);
  EXPECT_EQ(d.header.tag, 0xdeadbeefu);
  EXPECT_EQ(d.header.chain_len, 3);
  EXPECT_EQ(d.header.position, 1);
  EXPECT_EQ(d.header.contiguous, 1);
  EXPECT_EQ(d.header.prev_offset, 0x123456789aULL);
  EXPECT_EQ(d.header.prev_ssd, 2);
  EXPECT_EQ(d.header.log_head, 111u);
  EXPECT_EQ(d.header.log_tail, 222u);
  ASSERT_EQ(d.items.size(), 2u);
  EXPECT_EQ(d.items[0].key, "alpha");
  EXPECT_EQ(d.items[0].value_len, 100u);
  EXPECT_EQ(d.items[0].value_offset, 5000u);
  EXPECT_EQ(d.items[0].value_ssd, 1);
  EXPECT_TRUE(d.items[1].IsTombstone());
}

TEST(BucketFormatTest, ValueOffset48BitRoundTrip) {
  Bucket b;
  b.items.push_back(MakeItem("k", 1, (1ULL << 48) - 1));
  auto enc = EncodeBucket(b, 512);
  ASSERT_TRUE(enc.ok());
  auto dec = DecodeBucket(enc.value(), 0, 512);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec.value().items[0].value_offset, (1ULL << 48) - 1);
}

TEST(BucketFormatTest, OversizedBucketRejected) {
  Bucket b;
  for (int i = 0; i < 100; ++i) {
    b.items.push_back(MakeItem("key-" + std::to_string(i), 10, i));
  }
  auto enc = EncodeBucket(b, 512);
  EXPECT_FALSE(enc.ok());
}

TEST(BucketFormatTest, ShortBufferIsCorruption) {
  std::vector<uint8_t> tiny(100, 0);
  EXPECT_FALSE(DecodeBucket(tiny, 0, 512).ok());
  std::vector<uint8_t> misaligned(1000, 0);
  EXPECT_FALSE(DecodeBucket(misaligned, 600, 512).ok());
}

TEST(BucketFormatTest, DecodeAtOffsetWithinArray) {
  Bucket b1, b2;
  b1.header.segment_id = 1;
  b1.items.push_back(MakeItem("one", 1, 10));
  b2.header.segment_id = 2;
  b2.items.push_back(MakeItem("two", 2, 20));
  auto e1 = EncodeBucket(b1, 256);
  auto e2 = EncodeBucket(b2, 256);
  ASSERT_TRUE(e1.ok() && e2.ok());
  std::vector<uint8_t> blob = e1.value();
  blob.insert(blob.end(), e2.value().begin(), e2.value().end());

  auto d2 = DecodeBucket(blob, 256, 256);
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d2.value().header.segment_id, 2u);
  EXPECT_EQ(d2.value().items[0].key, "two");
}

// ---------------------------------------------------------------------------
// Bucket mutation helpers
// ---------------------------------------------------------------------------

TEST(BucketUpsertTest, InsertsNewestFirst) {
  Bucket b;
  EXPECT_TRUE(b.Upsert(512, MakeItem("a", 1, 1)));
  EXPECT_TRUE(b.Upsert(512, MakeItem("b", 2, 2)));
  ASSERT_EQ(b.items.size(), 2u);
  EXPECT_EQ(b.items[0].key, "b");  // newest first
  EXPECT_EQ(b.items[1].key, "a");
}

TEST(BucketUpsertTest, ReplacesInPlace) {
  Bucket b;
  EXPECT_TRUE(b.Upsert(512, MakeItem("a", 1, 1)));
  EXPECT_TRUE(b.Upsert(512, MakeItem("a", 9, 99)));
  ASSERT_EQ(b.items.size(), 1u);
  EXPECT_EQ(b.items[0].value_offset, 99u);
}

TEST(BucketUpsertTest, RespectsCapacity) {
  Bucket b;
  // Item size = 13 fixed + 8 key = 21 bytes; header 32. In 128 bytes:
  // (128-32)/21 = 4 items.
  int inserted = 0;
  while (b.Upsert(128, MakeItem("key-" + std::to_string(inserted) + "xx", 1,
                                inserted))) {
    ++inserted;
  }
  EXPECT_EQ(inserted, 4);
  EXPECT_TRUE(b.CanUpsert(128, MakeItem("key-0xx", 5, 5)));  // replace fits
  EXPECT_FALSE(b.CanUpsert(128, MakeItem("brand-new", 5, 5)));
}

TEST(BucketUpsertTest, FindReturnsNewest) {
  Bucket b;
  b.Upsert(512, MakeItem("x", 1, 1));
  auto idx = b.Find("x");
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(b.items[*idx].value_offset, 1u);
  EXPECT_FALSE(b.Find("missing").has_value());
}

// ---------------------------------------------------------------------------
// Value entries
// ---------------------------------------------------------------------------

TEST(ValueEntryTest, RoundTrip) {
  ValueEntry e;
  e.segment_id = 42;
  e.key = "user123";
  e.value = {9, 8, 7, 6};
  auto bytes = EncodeValueEntry(e);
  EXPECT_EQ(bytes.size(), e.EncodedSize());
  auto d = DecodeValueEntry(bytes, 0);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().segment_id, 42u);
  EXPECT_EQ(d.value().key, "user123");
  EXPECT_EQ(d.value().value, (std::vector<uint8_t>{9, 8, 7, 6}));
}

TEST(ValueEntryTest, SequentialParse) {
  ValueEntry a, b;
  a.segment_id = 1;
  a.key = "k1";
  a.value = std::vector<uint8_t>(100, 1);
  b.segment_id = 2;
  b.key = "key-two";
  b.value = std::vector<uint8_t>(37, 2);
  auto blob = EncodeValueEntry(a);
  auto bb = EncodeValueEntry(b);
  blob.insert(blob.end(), bb.begin(), bb.end());

  auto d1 = DecodeValueEntry(blob, 0);
  ASSERT_TRUE(d1.ok());
  auto d2 = DecodeValueEntry(blob, d1.value().EncodedSize());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d2.value().key, "key-two");
  EXPECT_EQ(d2.value().value.size(), 37u);
}

TEST(ValueEntryTest, TruncatedIsCorruption) {
  ValueEntry e;
  e.key = "k";
  e.value = std::vector<uint8_t>(100, 3);
  auto bytes = EncodeValueEntry(e);
  bytes.resize(bytes.size() - 10);
  EXPECT_FALSE(DecodeValueEntry(bytes, 0).ok());
  std::vector<uint8_t> tiny(4, 0);
  EXPECT_FALSE(DecodeValueEntry(tiny, 0).ok());
}

// ---------------------------------------------------------------------------
// SegmentTable
// ---------------------------------------------------------------------------

TEST(SegmentTableTest, LockBitBasics) {
  SegmentTable tbl(16);
  EXPECT_TRUE(tbl.TryLock(3));
  EXPECT_FALSE(tbl.TryLock(3));
  EXPECT_TRUE(tbl.IsLocked(3));
  int resumed = 0;
  tbl.Unlock(3, [&](std::function<void()> fn) {
    resumed++;
    fn();
  });
  EXPECT_FALSE(tbl.IsLocked(3));
  EXPECT_EQ(resumed, 0);  // no waiters
}

TEST(SegmentTableTest, WaitersResumeFifoOnePerUnlock) {
  SegmentTable tbl(4);
  ASSERT_TRUE(tbl.TryLock(1));
  std::vector<int> order;
  tbl.WaitOnLock(1, [&] { order.push_back(1); });
  tbl.WaitOnLock(1, [&] { order.push_back(2); });
  EXPECT_EQ(tbl.waiters(1), 2u);

  auto run_now = [](std::function<void()> fn) { fn(); };
  tbl.Unlock(1, run_now);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(tbl.waiters(1), 1u);
  ASSERT_TRUE(tbl.TryLock(1));
  tbl.Unlock(1, run_now);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SegmentTableTest, MaxChainFromBits) {
  SegmentTable tbl(4, 4);
  EXPECT_EQ(tbl.max_chain(), 15u);
  SegmentTable tbl3(4, 3);
  EXPECT_EQ(tbl3.max_chain(), 7u);
}

TEST(SegmentTableTest, PaperDramAccountingUnderHalfByte) {
  // Challenge C1: a Stingray-scale config must index 256B objects at well
  // under 0.5 B/object. 4KB buckets hold ~140 items; one entry per segment.
  constexpr uint64_t kObjects = 1'000'000;
  constexpr uint32_t kItemsPerBucket = 140;
  SegmentTable tbl(kObjects / kItemsPerBucket, 4);
  double bpo = tbl.PaperBytesPerObject(kObjects);
  EXPECT_LT(bpo, 0.1);
  EXPECT_GT(bpo, 0.0);
  // And FAWN's 6 B/object is two orders of magnitude worse.
  EXPECT_LT(bpo * 60, 6.0);
}

TEST(SegmentTableTest, EmptyEntryDetection) {
  SegmentTable tbl(2);
  EXPECT_TRUE(tbl.At(0).Empty());
  tbl.At(0).chain_len = 1;
  EXPECT_FALSE(tbl.At(0).Empty());
}

}  // namespace
}  // namespace leed::store
