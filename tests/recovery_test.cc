// Crash-recovery tests: SegTbl reconstruction from the key-log scan
// (paper §3.2.3's recovery fields), including chains, collapsed arrays,
// torn tail appends, deletions, and swapped segments.

#include <gtest/gtest.h>

#include <map>

#include "log/circular_log.h"
#include "sim/block_device.h"
#include "sim/cpu_model.h"
#include "sim/fault.h"
#include "sim/simulator.h"
#include "store/data_store.h"
#include "store/recovery.h"
#include "test_util.h"

namespace leed::store {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : device_(sim_, 64ull << 20, 512), donor_(sim_, 64ull << 20, 512),
                   core_(sim_, 3.0) {}

  StoreConfig Config() {
    StoreConfig cfg;
    cfg.num_segments = 64;
    cfg.bucket_size = 512;
    cfg.compaction_threshold = 1.1;
    return cfg;
  }

  // Build a store over fresh CircularLog objects attached to the SAME
  // device (the "disk" survives the crash; the process state does not).
  std::unique_ptr<DataStore> FreshStore(bool restore_from = false,
                                        const RecoveryCheckpoint* cp = nullptr) {
    key_log_ = std::make_unique<log::CircularLog>(device_, 0, 8 << 20);
    value_log_ = std::make_unique<log::CircularLog>(device_, 8 << 20, 8 << 20);
    if (restore_from && cp) {
      EXPECT_TRUE(key_log_->Restore(cp->logs[0].key_head, cp->logs[0].key_tail).ok());
      EXPECT_TRUE(
          value_log_->Restore(cp->logs[0].value_head, cp->logs[0].value_tail).ok());
    }
    return std::make_unique<DataStore>(sim_, core_,
                                       LogSet{0, key_log_.get(), value_log_.get()},
                                       Config());
  }

  RecoveryStats Recover(DataStore& ds, const RecoveryCheckpoint& cp) {
    RecoveryStats stats;
    bool done = false;
    RecoverSegTbl(ds, cp, [&](Status st, RecoveryStats s) {
      EXPECT_TRUE(st.ok()) << st.ToString();
      stats = s;
      done = true;
    });
    testutil::RunUntilFlag(sim_, done);
    EXPECT_TRUE(done);
    return stats;
  }

  // Extended-scan recovery: adopt acked appends found beyond the
  // checkpointed tail (CRC + self-identity validated).
  RecoveryStats RecoverBeyondTail(DataStore& ds, const RecoveryCheckpoint& cp) {
    RecoveryStats stats;
    bool done = false;
    RecoverOptions opts;
    opts.scan_beyond_tail = true;
    RecoverSegTbl(ds, cp, opts, [&](Status st, RecoveryStats s) {
      EXPECT_TRUE(st.ok()) << st.ToString();
      stats = s;
      done = true;
    });
    testutil::RunUntilFlag(sim_, done);
    EXPECT_TRUE(done);
    return stats;
  }

  sim::Simulator sim_;
  sim::MemBlockDevice device_;
  sim::MemBlockDevice donor_;
  sim::CpuCore core_;
  std::unique_ptr<log::CircularLog> key_log_, value_log_;
};

TEST_F(RecoveryTest, RebuildsAllKeysAfterCrash) {
  auto ds = FreshStore();
  std::map<std::string, std::vector<uint8_t>> truth;
  for (int i = 0; i < 100; ++i) {
    std::string key = "k" + std::to_string(i);
    auto value = testutil::TestValue(i, 80);
    ASSERT_TRUE(testutil::SyncPut(sim_, *ds, key, value).ok());
    truth[key] = value;
  }
  // Overwrites and deletes before the crash.
  for (int i = 0; i < 100; i += 3) {
    std::string key = "k" + std::to_string(i);
    auto value = testutil::TestValue(1000 + i, 80);
    ASSERT_TRUE(testutil::SyncPut(sim_, *ds, key, value).ok());
    truth[key] = value;
  }
  for (int i = 0; i < 100; i += 10) {
    std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(testutil::SyncDel(sim_, *ds, key).ok());
    truth.erase(key);
  }
  RecoveryCheckpoint cp = Checkpoint(*ds);

  ds.reset();  // crash: all DRAM state gone
  auto recovered = FreshStore(true, &cp);
  RecoveryStats stats = Recover(*recovered, cp);
  EXPECT_GT(stats.segments_recovered, 0u);
  EXPECT_GT(stats.buckets_scanned, 0u);

  for (int i = 0; i < 100; ++i) {
    std::string key = "k" + std::to_string(i);
    std::vector<uint8_t> out;
    Status st = testutil::SyncGet(sim_, *recovered, key, &out);
    auto it = truth.find(key);
    if (it == truth.end()) {
      EXPECT_TRUE(st.IsNotFound()) << key;
    } else {
      ASSERT_TRUE(st.ok()) << key << ": " << st.ToString();
      EXPECT_EQ(out, it->second) << key;
    }
  }
}

TEST_F(RecoveryTest, RecoversCollapsedArraysAndChains) {
  StoreConfig cfg = Config();
  cfg.num_segments = 1;  // everything in one long chain
  key_log_ = std::make_unique<log::CircularLog>(device_, 0, 8 << 20);
  value_log_ = std::make_unique<log::CircularLog>(device_, 8 << 20, 8 << 20);
  auto ds = std::make_unique<DataStore>(
      sim_, core_, LogSet{0, key_log_.get(), value_log_.get()}, cfg);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(testutil::SyncPut(sim_, *ds, "key" + std::to_string(i),
                                  testutil::TestValue(i, 40))
                    .ok());
  }
  // Collapse into a contiguous array, then add a few more chain buckets.
  bool done = false;
  ds->ForceKeyCompaction([&](Status) { done = true; });
  testutil::RunUntilFlag(sim_, done);
  for (int i = 60; i < 70; ++i) {
    ASSERT_TRUE(testutil::SyncPut(sim_, *ds, "key" + std::to_string(i),
                                  testutil::TestValue(i, 40))
                    .ok());
  }
  RecoveryCheckpoint cp = Checkpoint(*ds);
  uint8_t chain_before = ds->segments().At(0).chain_len;
  uint64_t head_before = ds->segments().At(0).offset;

  ds.reset();
  key_log_ = std::make_unique<log::CircularLog>(device_, 0, 8 << 20);
  value_log_ = std::make_unique<log::CircularLog>(device_, 8 << 20, 8 << 20);
  ASSERT_TRUE(key_log_->Restore(cp.logs[0].key_head, cp.logs[0].key_tail).ok());
  ASSERT_TRUE(value_log_->Restore(cp.logs[0].value_head, cp.logs[0].value_tail).ok());
  auto recovered = std::make_unique<DataStore>(
      sim_, core_, LogSet{0, key_log_.get(), value_log_.get()}, cfg);
  Recover(*recovered, cp);

  EXPECT_EQ(recovered->segments().At(0).chain_len, chain_before);
  EXPECT_EQ(recovered->segments().At(0).offset, head_before);
  for (int i = 0; i < 70; ++i) {
    std::vector<uint8_t> out;
    ASSERT_TRUE(
        testutil::SyncGet(sim_, *recovered, "key" + std::to_string(i), &out).ok())
        << i;
    EXPECT_EQ(out, testutil::TestValue(i, 40));
  }
}

TEST_F(RecoveryTest, IgnoresWritesAfterCheckpoint) {
  auto ds = FreshStore();
  ASSERT_TRUE(testutil::SyncPut(sim_, *ds, "stable", testutil::TestValue(1, 64)).ok());
  RecoveryCheckpoint cp = Checkpoint(*ds);
  // These land after the checkpoint: "torn"/unacknowledged at crash time.
  ASSERT_TRUE(testutil::SyncPut(sim_, *ds, "lost", testutil::TestValue(2, 64)).ok());

  ds.reset();
  auto recovered = FreshStore(true, &cp);
  Recover(*recovered, cp);
  EXPECT_TRUE(testutil::SyncGet(sim_, *recovered, "stable").ok());
  EXPECT_TRUE(testutil::SyncGet(sim_, *recovered, "lost").IsNotFound());
}

TEST_F(RecoveryTest, RecoversDurableWritesPastCheckpoint) {
  auto ds = FreshStore();
  ASSERT_TRUE(testutil::SyncPut(sim_, *ds, "stable", testutil::TestValue(1, 64)).ok());
  RecoveryCheckpoint cp = Checkpoint(*ds);
  // Acked after the checkpoint: the extended scan must re-adopt them.
  ASSERT_TRUE(testutil::SyncPut(sim_, *ds, "late-1", testutil::TestValue(2, 64)).ok());
  ASSERT_TRUE(testutil::SyncPut(sim_, *ds, "late-2", testutil::TestValue(3, 96)).ok());
  ASSERT_TRUE(testutil::SyncDel(sim_, *ds, "stable").ok());

  ds.reset();
  auto recovered = FreshStore(true, &cp);
  RecoveryStats stats = RecoverBeyondTail(*recovered, cp);
  EXPECT_GT(stats.extended_buckets, 0u);
  std::vector<uint8_t> out;
  ASSERT_TRUE(testutil::SyncGet(sim_, *recovered, "late-1", &out).ok());
  EXPECT_EQ(out, testutil::TestValue(2, 64));
  ASSERT_TRUE(testutil::SyncGet(sim_, *recovered, "late-2", &out).ok());
  EXPECT_EQ(out, testutil::TestValue(3, 96));
  // The acked post-checkpoint DEL is honoured too.
  EXPECT_TRUE(testutil::SyncGet(sim_, *recovered, "stable").IsNotFound());
}

TEST_F(RecoveryTest, TornTailAppendIsRejectedCleanly) {
  auto ds = FreshStore();
  ASSERT_TRUE(testutil::SyncPut(sim_, *ds, "stable", testutil::TestValue(1, 64)).ok());
  RecoveryCheckpoint cp = Checkpoint(*ds);
  ASSERT_TRUE(testutil::SyncPut(sim_, *ds, "durable", testutil::TestValue(2, 64)).ok());

  // Simulate a torn in-flight append at the tail: a strict prefix of the
  // next bucket made it to the media before power cut, the rest never did.
  // 200 bytes of a stale buffer land where the next bucket would start.
  const uint64_t tail = Checkpoint(*ds).logs[0].key_tail;
  const uint64_t torn_at = tail % (8 << 20);  // key log occupies [0, 8MB)
  sim::IoRequest torn;
  torn.type = sim::IoType::kWrite;
  torn.offset = torn_at;
  torn.data.assign(200, 0x5a);
  torn.length = torn.data.size();
  bool wrote = false;
  ASSERT_TRUE(device_.Submit(std::move(torn), [&](sim::IoResult r) {
    EXPECT_TRUE(r.status.ok());
    wrote = true;
  }).ok());
  testutil::RunUntilFlag(sim_, wrote);

  ds.reset();
  auto recovered = FreshStore(true, &cp);
  RecoveryStats stats = RecoverBeyondTail(*recovered, cp);
  // The acked post-checkpoint PUT is adopted; the torn append fails the
  // per-bucket CRC and rolls back cleanly instead of resurrecting garbage.
  EXPECT_GT(stats.extended_buckets, 0u);
  EXPECT_GT(stats.crc_rejected + stats.torn_buckets_ignored, 0u);
  std::vector<uint8_t> out;
  ASSERT_TRUE(testutil::SyncGet(sim_, *recovered, "durable", &out).ok());
  EXPECT_EQ(out, testutil::TestValue(2, 64));
  ASSERT_TRUE(testutil::SyncGet(sim_, *recovered, "stable", &out).ok());
  EXPECT_EQ(out, testutil::TestValue(1, 64));
}

TEST_F(RecoveryTest, RecoversSwappedSegmentsWrittenAfterCheckpoint) {
  auto ds = FreshStore();
  auto donor_key = std::make_unique<log::CircularLog>(donor_, 0, 4 << 20);
  auto donor_value = std::make_unique<log::CircularLog>(donor_, 4 << 20, 4 << 20);
  ds->AddLogSet(LogSet{1, donor_key.get(), donor_value.get()});
  ASSERT_TRUE(testutil::SyncPut(sim_, *ds, "home-key", testutil::TestValue(1, 64)).ok());
  RecoveryCheckpoint cp = Checkpoint(*ds);
  ASSERT_EQ(cp.logs.size(), 2u);
  // The swap target moves *after* the checkpoint: the donor's checkpointed
  // window is empty and the swapped bucket lives wholly beyond its tail.
  ds->SetSwapTarget(1);
  ASSERT_TRUE(
      testutil::SyncPut(sim_, *ds, "swapped-key", testutil::TestValue(2, 64)).ok());

  ds.reset();
  auto recovered = FreshStore(true, &cp);
  auto donor_key2 = std::make_unique<log::CircularLog>(donor_, 0, 4 << 20);
  auto donor_value2 = std::make_unique<log::CircularLog>(donor_, 4 << 20, 4 << 20);
  ASSERT_TRUE(donor_key2->Restore(cp.logs[1].key_head, cp.logs[1].key_tail).ok());
  ASSERT_TRUE(
      donor_value2->Restore(cp.logs[1].value_head, cp.logs[1].value_tail).ok());
  recovered->AddLogSet(LogSet{1, donor_key2.get(), donor_value2.get()});
  RecoveryStats stats = RecoverBeyondTail(*recovered, cp);
  EXPECT_GT(stats.extended_buckets, 0u);

  std::vector<uint8_t> out;
  ASSERT_TRUE(testutil::SyncGet(sim_, *recovered, "home-key", &out).ok());
  EXPECT_EQ(out, testutil::TestValue(1, 64));
  ASSERT_TRUE(testutil::SyncGet(sim_, *recovered, "swapped-key", &out).ok());
  EXPECT_EQ(out, testutil::TestValue(2, 64));
}

TEST_F(RecoveryTest, EmptyStoreRecoversToEmpty) {
  auto ds = FreshStore();
  RecoveryCheckpoint cp = Checkpoint(*ds);
  ds.reset();
  auto recovered = FreshStore(true, &cp);
  RecoveryStats stats = Recover(*recovered, cp);
  EXPECT_EQ(stats.buckets_scanned, 0u);
  EXPECT_EQ(stats.segments_recovered, 0u);
  EXPECT_TRUE(testutil::SyncGet(sim_, *recovered, "anything").IsNotFound());
}

TEST_F(RecoveryTest, RestoreValidatesPointers) {
  log::CircularLog log(device_, 0, 1000);
  EXPECT_FALSE(log.Restore(100, 50).ok());    // head > tail
  EXPECT_FALSE(log.Restore(0, 2000).ok());    // bigger than region
  EXPECT_TRUE(log.Restore(100, 600).ok());
  EXPECT_FALSE(log.Restore(0, 0).ok());       // not fresh anymore
}

TEST_F(RecoveryTest, RecoversSwappedSegmentsFromDonor) {
  auto ds = FreshStore();
  auto donor_key = std::make_unique<log::CircularLog>(donor_, 0, 4 << 20);
  auto donor_value = std::make_unique<log::CircularLog>(donor_, 4 << 20, 4 << 20);
  ds->AddLogSet(LogSet{1, donor_key.get(), donor_value.get()});
  ASSERT_TRUE(testutil::SyncPut(sim_, *ds, "home-key", testutil::TestValue(1, 64)).ok());
  ds->SetSwapTarget(1);
  ASSERT_TRUE(
      testutil::SyncPut(sim_, *ds, "swapped-key", testutil::TestValue(2, 64)).ok());
  RecoveryCheckpoint cp = Checkpoint(*ds);
  ASSERT_EQ(cp.logs.size(), 2u);

  ds.reset();
  auto recovered = FreshStore(true, &cp);
  auto donor_key2 = std::make_unique<log::CircularLog>(donor_, 0, 4 << 20);
  auto donor_value2 = std::make_unique<log::CircularLog>(donor_, 4 << 20, 4 << 20);
  ASSERT_TRUE(donor_key2->Restore(cp.logs[1].key_head, cp.logs[1].key_tail).ok());
  ASSERT_TRUE(
      donor_value2->Restore(cp.logs[1].value_head, cp.logs[1].value_tail).ok());
  recovered->AddLogSet(LogSet{1, donor_key2.get(), donor_value2.get()});
  Recover(*recovered, cp);

  std::vector<uint8_t> out;
  ASSERT_TRUE(testutil::SyncGet(sim_, *recovered, "home-key", &out).ok());
  EXPECT_EQ(out, testutil::TestValue(1, 64));
  ASSERT_TRUE(testutil::SyncGet(sim_, *recovered, "swapped-key", &out).ok());
  EXPECT_EQ(out, testutil::TestValue(2, 64));
}

}  // namespace
}  // namespace leed::store
