// Tests for the extension features: weighted multi-tenant token allocation
// (§3.5) and the CRAQ-style version-query read mode (§3.7's design
// alternative, kept as an ablation).

#include <gtest/gtest.h>

#include "engine/io_engine.h"
#include "leed/cluster_sim.h"
#include "sim/fault.h"
#include "test_util.h"

namespace leed {
namespace {

TEST(TenantWeightsTest, AdvertisedTokensSplitByWeight) {
  sim::Simulator simulator;
  sim::CpuModel cpu(simulator, 8, 3.0);
  engine::EngineConfig cfg;
  cfg.ssd_count = 1;
  cfg.stores_per_ssd = 1;
  cfg.ssd = sim::Dct983Spec();
  cfg.ssd.capacity_bytes = 1ull << 30;
  cfg.tokens.base_tokens = 100;
  cfg.tokens.min_tokens = 100;
  cfg.tokens.max_tokens = 100;
  cfg.tenant_weights = {3.0, 1.0};  // tenant 0 gets 75%, tenant 1 gets 25%
  engine::IoEngine eng(simulator, cpu, cfg, 1);

  EXPECT_EQ(eng.AvailableTokensFor(0, 0), 75u);
  EXPECT_EQ(eng.AvailableTokensFor(0, 1), 25u);
  // Unknown tenants get the smallest configured share.
  EXPECT_EQ(eng.AvailableTokensFor(0, 9), 25u);
  // No weights configured => full pool for everyone.
  cfg.tenant_weights.clear();
  engine::IoEngine flat(simulator, cpu, cfg, 2);
  EXPECT_EQ(flat.AvailableTokensFor(0, 0), 100u);
  EXPECT_EQ(flat.AvailableTokensFor(0, 7), 100u);
}

TEST(TenantWeightsTest, ResponseMetaCarriesTenantShare) {
  sim::Simulator simulator;
  sim::CpuModel cpu(simulator, 8, 3.0);
  engine::EngineConfig cfg;
  cfg.ssd_count = 1;
  cfg.stores_per_ssd = 1;
  cfg.ssd = sim::Dct983Spec();
  cfg.ssd.capacity_bytes = 1ull << 30;
  cfg.ssd.latency_jitter = 0;
  cfg.ssd.slow_io_prob = 0;
  cfg.tokens.base_tokens = 80;
  cfg.tokens.min_tokens = 80;
  cfg.tokens.max_tokens = 80;
  cfg.tenant_weights = {1.0, 1.0, 2.0};
  engine::IoEngine eng(simulator, cpu, cfg, 3);

  uint32_t t0_tokens = 0, t2_tokens = 0;
  for (uint32_t tenant : {0u, 2u}) {
    engine::Request req;
    req.type = engine::OpType::kGet;
    req.key = "missing";
    req.store_id = 0;
    req.tenant = tenant;
    req.callback = [&, tenant](Status, std::vector<uint8_t>,
                               engine::ResponseMeta meta) {
      (tenant == 0 ? t0_tokens : t2_tokens) = meta.available_tokens;
    };
    eng.Submit(std::move(req));
    simulator.Run();
  }
  EXPECT_EQ(t0_tokens, 20u);  // 80 * 1/4
  EXPECT_EQ(t2_tokens, 40u);  // 80 * 2/4
}

// ---------------------------------------------------------------------------
// CRAQ version-query read mode
// ---------------------------------------------------------------------------

ClusterConfig CraqCluster() {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.num_clients = 1;
  cfg.node.platform = sim::StingrayJbof();
  cfg.node.stack = StackKind::kLeed;
  cfg.node.crrs = true;
  cfg.node.craq_version_query = true;
  cfg.node.engine.ssd_count = 2;
  cfg.node.engine.stores_per_ssd = 2;
  cfg.node.engine.ssd = sim::Dct983Spec();
  cfg.node.engine.ssd.capacity_bytes = 1ull << 30;
  cfg.node.engine.ssd.latency_jitter = 0;
  cfg.node.engine.ssd.slow_io_prob = 0;
  cfg.node.engine.store_template.num_segments = 256;
  cfg.node.engine.store_template.bucket_size = 512;
  cfg.client.crrs_reads = true;
  cfg.client.stores_per_ssd = 2;
  cfg.control_plane.replication_factor = 3;
  return cfg;
}

TEST(CraqModeTest, DirtyReadsResolveViaVersionQuery) {
  ClusterSim cluster(CraqCluster());
  cluster.Bootstrap();
  cluster.Preload(50, 128);

  // Interleave writes and reads of the same hot keys so reads land on
  // dirty replicas.
  int outstanding = 0, read_errors = 0;
  auto& c = cluster.client(0);
  for (int round = 0; round < 30; ++round) {
    for (int k = 0; k < 8; ++k) {
      std::string key = workload::YcsbGenerator::KeyName(k);
      ++outstanding;
      c.Put(key, testutil::TestValue(round, 128), [&](Status st, SimTime) {
        EXPECT_TRUE(st.ok());
        --outstanding;
      });
      ++outstanding;
      c.Get(key, [&](Status st, std::vector<uint8_t>, SimTime) {
        if (!st.ok() && !st.IsNotFound()) ++read_errors;
        --outstanding;
      });
    }
  }
  cluster.simulator().Run();
  EXPECT_EQ(outstanding, 0);
  EXPECT_EQ(read_errors, 0);

  uint64_t queries = 0, answers = 0, shipped = 0;
  for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    queries += cluster.node(n).stats().craq_queries_sent;
    answers += cluster.node(n).stats().craq_queries_answered;
    shipped += cluster.node(n).stats().reads_shipped;
  }
  EXPECT_GT(queries, 0u);       // dirty reads went the CRAQ way
  EXPECT_EQ(queries, answers);  // every query was serialized by a tail
  EXPECT_EQ(shipped, 0u);       // and none were shipped
}

TEST(CraqModeTest, ValuesRemainCorrectUnderCraq) {
  ClusterSim cluster(CraqCluster());
  cluster.Bootstrap();
  cluster.Preload(100, 128);
  workload::YcsbConfig wc;
  wc.num_keys = 100;
  wc.value_size = 128;
  workload::YcsbGenerator gen(wc);
  for (uint64_t i = 0; i < 100; i += 9) {
    bool done = false;
    cluster.client(0).Get(workload::YcsbGenerator::KeyName(i),
                          [&, i](Status st, std::vector<uint8_t> v, SimTime) {
                            EXPECT_TRUE(st.ok());
                            EXPECT_EQ(v, gen.MakeValue(i));
                            done = true;
                          });
    while (!done && cluster.simulator().events_pending() > 0 &&
           cluster.simulator().Step()) {
    }
    EXPECT_TRUE(done);
  }
}

TEST(CraqModeTest, DroppedQueryRepliesAreReapedNotLeaked) {
  // Regression: a craq_pending_ entry whose version query (or reply) is
  // lost on the wire used to park forever — past the client timeout, and
  // leaking map entries. The deadline sweep must NACK it within
  // craq_query_timeout so the client retries promptly.
  ClusterConfig cfg = CraqCluster();
  cfg.node.craq_query_timeout = 5 * kMillisecond;
  ClusterSim cluster(cfg);
  cluster.Bootstrap();
  cluster.Preload(50, 128);
  cluster.ArmFaultPlan(sim::ParseFaultPlan("net:drop=0.25").value());

  int outstanding = 0;
  auto& c = cluster.client(0);
  for (int round = 0; round < 30; ++round) {
    for (int k = 0; k < 8; ++k) {
      std::string key = workload::YcsbGenerator::KeyName(k);
      ++outstanding;
      c.Put(key, testutil::TestValue(round, 128),
            [&](Status, SimTime) { --outstanding; });
      ++outstanding;
      c.Get(key, [&](Status, std::vector<uint8_t>, SimTime) {
        // Errors are legitimate under message loss (bounded retries can
        // exhaust); what matters is that every callback fires.
        --outstanding;
      });
    }
  }
  // Drive the lossy phase, then heal the network and drain the retries.
  auto& simulator = cluster.simulator();
  while (simulator.Now() < 120 * kMillisecond &&
         simulator.events_pending() > 0 && simulator.Step()) {
  }
  cluster.faults().net().set_spec(sim::NetFaultSpec{});
  simulator.Run();

  EXPECT_EQ(outstanding, 0);  // nothing parked past its deadline

  uint64_t sent = 0, answered = 0, reaped = 0;
  for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    sent += cluster.node(n).stats().craq_queries_sent;
    answered += cluster.node(n).stats().craq_queries_answered;
    reaped += cluster.node(n).stats().craq_queries_reaped;
  }
  EXPECT_GT(sent, 0u);
  EXPECT_GT(reaped, 0u);  // at least one lost round trip hit the deadline
  EXPECT_LE(reaped, sent);
  (void)answered;
}

}  // namespace
}  // namespace leed
