// Tests for chain topology helpers and CRRS replica state (dirty map,
// pending-write buffer, fill-tracking skip set).

#include <gtest/gtest.h>

#include "replication/chain.h"
#include "replication/crrs.h"

namespace leed::replication {
namespace {

using cluster::kInvalidVNode;
using cluster::VNodeId;

TEST(ChainTest, Roles) {
  std::vector<VNodeId> chain = {5, 7, 9};
  EXPECT_EQ(RoleIn(chain, 5), Role::kHead);
  EXPECT_EQ(RoleIn(chain, 7), Role::kMid);
  EXPECT_EQ(RoleIn(chain, 9), Role::kTail);
  EXPECT_EQ(RoleIn(chain, 42), Role::kNone);
}

TEST(ChainTest, TwoNodeChainHasNoMid) {
  std::vector<VNodeId> chain = {1, 2};
  EXPECT_EQ(RoleIn(chain, 1), Role::kHead);
  EXPECT_EQ(RoleIn(chain, 2), Role::kTail);
}

TEST(ChainTest, SingleNodeIsHead) {
  std::vector<VNodeId> chain = {1};
  // A 1-chain's only member is the head (and acts as commit point).
  EXPECT_EQ(RoleIn(chain, 1), Role::kHead);
}

TEST(ChainTest, Neighbors) {
  std::vector<VNodeId> chain = {5, 7, 9};
  EXPECT_EQ(NextIn(chain, 5), 7u);
  EXPECT_EQ(NextIn(chain, 9), kInvalidVNode);
  EXPECT_EQ(PrevIn(chain, 9), 7u);
  EXPECT_EQ(PrevIn(chain, 5), kInvalidVNode);
  EXPECT_EQ(NextIn(chain, 99), kInvalidVNode);
  EXPECT_EQ(IndexIn(chain, 7), 1);
  EXPECT_EQ(IndexIn(chain, 8), -1);
}

PendingWrite MakeWrite(uint64_t id, const std::string& key) {
  PendingWrite w;
  w.write_id = id;
  w.key = key;
  w.value = {1, 2, 3};
  return w;
}

TEST(ReplicaStateTest, DirtyWhilePending) {
  ReplicaState rep;
  EXPECT_FALSE(rep.IsDirty("k"));
  rep.AddPending(MakeWrite(1, "k"));
  EXPECT_TRUE(rep.IsDirty("k"));
  auto w = rep.TakePending(1);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->key, "k");
  EXPECT_FALSE(rep.IsDirty("k"));
}

TEST(ReplicaStateTest, OverlappingWritesKeepDirtyUntilLastAck) {
  ReplicaState rep;
  rep.AddPending(MakeWrite(1, "k"));
  rep.AddPending(MakeWrite(2, "k"));
  rep.TakePending(1);
  EXPECT_TRUE(rep.IsDirty("k"));  // write 2 still pending
  rep.TakePending(2);
  EXPECT_FALSE(rep.IsDirty("k"));
}

TEST(ReplicaStateTest, DuplicateAddIsIgnored) {
  ReplicaState rep;
  rep.AddPending(MakeWrite(7, "k"));
  rep.AddPending(MakeWrite(7, "k"));  // re-forward duplicate
  EXPECT_EQ(rep.pending_writes(), 1u);
  rep.TakePending(7);
  EXPECT_FALSE(rep.IsDirty("k"));  // dirty count not inflated
}

TEST(ReplicaStateTest, TakeUnknownIsEmpty) {
  ReplicaState rep;
  EXPECT_FALSE(rep.TakePending(99).has_value());
}

TEST(ReplicaStateTest, TakeAllDrainsInWriteIdOrder) {
  ReplicaState rep;
  rep.AddPending(MakeWrite(3, "c"));
  rep.AddPending(MakeWrite(1, "a"));
  rep.AddPending(MakeWrite(2, "b"));
  auto all = rep.TakeAllPending();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].write_id, 1u);
  EXPECT_EQ(all[2].write_id, 3u);
  EXPECT_EQ(rep.pending_writes(), 0u);
  EXPECT_FALSE(rep.IsDirty("a"));
}

TEST(ReplicaStateTest, AppliedDedupe) {
  ReplicaState rep;
  EXPECT_FALSE(rep.SeenApplied(5));
  rep.MarkApplied(5);
  EXPECT_TRUE(rep.SeenApplied(5));
}

TEST(ReplicaStateTest, AppliedWindowEvictsOldest) {
  // The dedupe window is bounded: old ids age out FIFO, so a replica that
  // commits millions of writes does not grow without bound.
  ReplicaState rep;
  const uint64_t n = ReplicaState::kAppliedWindow + 100;
  for (uint64_t i = 0; i < n; ++i) rep.MarkApplied(i);
  EXPECT_FALSE(rep.SeenApplied(0));      // evicted
  EXPECT_FALSE(rep.SeenApplied(99));     // evicted
  EXPECT_TRUE(rep.SeenApplied(100));     // still inside the window
  EXPECT_TRUE(rep.SeenApplied(n - 1));
  // Duplicate marks do not double-insert into the eviction order.
  rep.MarkApplied(n - 1);
  EXPECT_TRUE(rep.SeenApplied(100));
}

TEST(ReplicaStateTest, FillTrackingRecordsOnlyWhileActive) {
  ReplicaState rep;
  rep.RecordChainWrite("before");  // not tracking yet
  rep.StartFillTracking();
  rep.RecordChainWrite("during");
  EXPECT_FALSE(rep.WasChainWritten("before"));
  EXPECT_TRUE(rep.WasChainWritten("during"));
  rep.StopFillTracking();
  EXPECT_FALSE(rep.WasChainWritten("during"));  // cleared
}

TEST(ReplicaStateTest, PeekDoesNotConsume) {
  ReplicaState rep;
  rep.AddPending(MakeWrite(4, "k"));
  ASSERT_NE(rep.PeekPending(4), nullptr);
  EXPECT_EQ(rep.PeekPending(4)->key, "k");
  EXPECT_EQ(rep.pending_writes(), 1u);
  EXPECT_EQ(rep.PeekPending(8), nullptr);
}

}  // namespace
}  // namespace leed::replication
