// Self-tests for the consistency-checking subsystem (docs/CHECKING.md):
//
//  * the corpus under tests/check_corpus/ — known-linearizable histories
//    must pass, known-violating ones (stale read, lost update,
//    non-monotonic read) must be convicted;
//  * HistoryLog mechanics: bounded capture, dump/parse round-trip;
//  * checker mechanics: step-budget inconclusiveness (never hangs),
//    violation minimization, per-key compositionality;
//  * the nemesis sweep end-to-end, including the mutation smoke test: a
//    build that serves dirty reads MUST be reported non-linearizable,
//    and the unmodified pipeline must come back clean and byte-identical
//    across runs.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/availability.h"
#include "check/history.h"
#include "check/linearize.h"
#include "check/nemesis.h"

#ifndef LEED_CHECK_CORPUS_DIR
#error "build must define LEED_CHECK_CORPUS_DIR"
#endif

namespace leed::check {
namespace {

std::vector<HistoryOp> LoadCorpus(const std::string& name) {
  const std::string path = std::string(LEED_CHECK_CORPUS_DIR) + "/" + name;
  auto parsed = HistoryLog::ParseFile(path);
  EXPECT_TRUE(parsed.ok()) << path << ": " << parsed.status().ToString();
  return std::move(parsed).value();
}

// ---------------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------------

TEST(CheckCorpus, LinearizableHistoriesPass) {
  for (const char* name :
       {"linearizable.history", "indeterminate_ok.history"}) {
    auto ops = LoadCorpus(name);
    ASSERT_FALSE(ops.empty()) << name;
    CheckReport report = CheckHistory(ops);
    EXPECT_EQ(report.verdict, Verdict::kLinearizable)
        << name << ": " << report.Summary();
    EXPECT_TRUE(report.violations.empty()) << name;
  }
}

TEST(CheckCorpus, ViolatingHistoriesAreConvicted) {
  struct Case {
    const char* file;
    const char* key;
  };
  for (const auto& c : {Case{"stale_read.history", "k0"},
                        Case{"lost_update.history", "k0"},
                        Case{"nonmonotonic_read.history", "k0"}}) {
    auto ops = LoadCorpus(c.file);
    ASSERT_FALSE(ops.empty()) << c.file;
    CheckReport report = CheckHistory(ops);
    EXPECT_EQ(report.verdict, Verdict::kViolation)
        << c.file << ": " << report.Summary();
    ASSERT_FALSE(report.violations.empty()) << c.file;
    EXPECT_EQ(report.violations[0].key, c.key) << c.file;
  }
}

TEST(CheckCorpus, ScanViolationsAreConvicted) {
  // Golden scan histories, one per cheap-pass conviction kind. The scan
  // passes run before the per-key projection, so the first violation
  // carries the scan-specific kind.
  struct Case {
    const char* file;
    const char* kind;
    const char* key;
  };
  for (const auto& c :
       {Case{"phantom_scan.history", "phantom-scan", "k1"},
        Case{"torn_scan.history", "torn-scan", "ka"},
        Case{"nonmonotonic_scan.history", "non-monotonic-scan", "k0"}}) {
    auto ops = LoadCorpus(c.file);
    ASSERT_FALSE(ops.empty()) << c.file;
    CheckReport report = CheckHistory(ops);
    EXPECT_EQ(report.verdict, Verdict::kViolation)
        << c.file << ": " << report.Summary();
    ASSERT_FALSE(report.violations.empty()) << c.file;
    EXPECT_EQ(report.violations[0].kind, c.kind) << c.file;
    EXPECT_EQ(report.violations[0].key, c.key) << c.file;
  }
}

TEST(CheckCorpus, ScanViolationsConvictedInSearchOnlyModeToo) {
  // With the cheap passes disabled the scan-cluster Wing–Gong search must
  // reach the same verdicts: the targeted scan passes are an optimization,
  // not the oracle.
  CheckOptions opt;
  opt.read_semantics = false;
  for (const char* name : {"phantom_scan.history", "torn_scan.history",
                           "nonmonotonic_scan.history"}) {
    auto ops = LoadCorpus(name);
    CheckReport report = CheckHistory(ops, opt);
    EXPECT_EQ(report.verdict, Verdict::kViolation)
        << name << ": " << report.Summary();
  }
}

TEST(CheckCorpus, ViolationsConvictedWithoutCheapPassesToo) {
  // The Wing–Gong search alone (read-semantics pass disabled) must reach
  // the same verdicts: the cheap passes are an optimization, not the oracle.
  CheckOptions opt;
  opt.read_semantics = false;
  for (const char* name : {"stale_read.history", "lost_update.history",
                           "nonmonotonic_read.history"}) {
    auto ops = LoadCorpus(name);
    CheckReport report = CheckHistory(ops, opt);
    EXPECT_EQ(report.verdict, Verdict::kViolation)
        << name << ": " << report.Summary();
  }
  auto ok_ops = LoadCorpus("linearizable.history");
  EXPECT_EQ(CheckHistory(ok_ops, opt).verdict, Verdict::kLinearizable);
}

TEST(CheckCorpus, MinimizedSubHistoryStillFails) {
  auto ops = LoadCorpus("stale_read.history");
  CheckReport report = CheckHistory(ops);
  ASSERT_EQ(report.verdict, Verdict::kViolation);
  ASSERT_FALSE(report.violations.empty());
  const auto& sub = report.violations[0].sub_history;
  ASSERT_FALSE(sub.empty());
  EXPECT_LE(sub.size(), ops.size());
  // The minimized sub-history must round-trip through the dump format and
  // still be convicted on its own.
  auto reparsed = HistoryLog::Parse(FormatDump(sub, 0));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(CheckHistory(reparsed.value()).verdict, Verdict::kViolation);
}

// ---------------------------------------------------------------------------
// HistoryLog mechanics
// ---------------------------------------------------------------------------

TEST(HistoryLog, RecordsAndRoundTrips) {
  HistoryLog log(/*max_ops=*/16);
  uint64_t a =
      log.RecordInvoke(0, OpKind::kPut, "key with space", 0xabcd, 8, 100);
  uint64_t b = log.RecordInvoke(1, OpKind::kGet, "key with space", 0, 0, 150);
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  log.RecordResponse(a, 200, Outcome::kOk, 0xabcd, 8);
  // b stays open (no response) on purpose.
  std::string dump = log.Dump();
  auto parsed = HistoryLog::Parse(dump);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[0].key, "key with space");
  EXPECT_EQ(parsed.value()[0].value_digest, 0xabcdu);
  EXPECT_EQ(parsed.value()[0].outcome, Outcome::kOk);
  EXPECT_EQ(parsed.value()[1].outcome, Outcome::kOpen);
  EXPECT_EQ(parsed.value()[1].response, kNoResponse);
  // Byte-stable: re-dumping the parsed ops reproduces the text.
  EXPECT_EQ(FormatDump(parsed.value(), 0), dump);
}

TEST(HistoryLog, BoundedCaptureCountsDrops) {
  HistoryLog log(/*max_ops=*/2);
  EXPECT_NE(log.RecordInvoke(0, OpKind::kPut, "a", 1, 1, 1), 0u);
  EXPECT_NE(log.RecordInvoke(0, OpKind::kPut, "b", 2, 1, 2), 0u);
  EXPECT_EQ(log.RecordInvoke(0, OpKind::kPut, "c", 3, 1, 3), 0u);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
  EXPECT_TRUE(log.truncated());
  // Responses for dropped ops (id 0) are ignored without crashing.
  log.RecordResponse(0, 4, Outcome::kOk, 0, 0);
}

// ---------------------------------------------------------------------------
// Availability extraction
// ---------------------------------------------------------------------------

namespace {
HistoryOp Probe(uint64_t id, SimTime invoke, SimTime response, Outcome out) {
  HistoryOp op;
  op.id = id;
  op.client = 0;
  op.kind = OpKind::kGet;
  op.key = "p";
  op.invoke = invoke;
  op.response = response;
  op.outcome = out;
  return op;
}
}  // namespace

TEST(Availability, CountsProbesInsideWindowOnly) {
  std::vector<HistoryOp> ops = {
      Probe(1, 5, 8, Outcome::kOk),        // before window: excluded
      Probe(2, 10, 15, Outcome::kOk),      // window_start is inclusive
      Probe(3, 20, 25, Outcome::kNotFound),  // determinate success
      Probe(4, 30, 35, Outcome::kError),
      Probe(5, 40, kNoResponse, Outcome::kOpen),
      Probe(6, 100, 105, Outcome::kOk),    // at window_end: excluded
  };
  auto r = ExtractAvailability(ops, /*window_start=*/10, /*window_end=*/100);
  EXPECT_EQ(r.probes, 4u);
  EXPECT_EQ(r.ok, 2u);
  EXPECT_EQ(r.errors, 1u);
  EXPECT_EQ(r.open, 1u);
  EXPECT_DOUBLE_EQ(r.availability, 2.0 / 3.0);
}

TEST(Availability, NoErrorsMeansZeroRecoveryAndFullAvailability) {
  std::vector<HistoryOp> ops = {
      Probe(1, 10, 20, Outcome::kOk),
      Probe(2, 30, 40, Outcome::kOk),
  };
  auto r = ExtractAvailability(ops, 0, 100);
  EXPECT_DOUBLE_EQ(r.availability, 1.0);
  EXPECT_EQ(r.recovery, 0);  // nothing to recover from
  EXPECT_TRUE(r.Recovered());
  EXPECT_EQ(r.first_error, -1);
  // Outage spans the gaps at the window edges: [0,20) has no OK response.
  EXPECT_EQ(r.max_outage, 60);  // 40 -> 100 (tail gap is the longest)
}

TEST(Availability, RecoveryIsFirstErrorToFirstOkAfterLastError) {
  std::vector<HistoryOp> ops = {
      Probe(1, 0, 10, Outcome::kOk),
      Probe(2, 15, 20, Outcome::kError),   // outage opens
      Probe(3, 25, 30, Outcome::kError),   // still down
      Probe(4, 35, 50, Outcome::kOk),      // first success after last error
      Probe(5, 55, 60, Outcome::kOk),
  };
  auto r = ExtractAvailability(ops, 0, 100);
  EXPECT_EQ(r.first_error, 20);
  EXPECT_EQ(r.last_error, 30);
  EXPECT_EQ(r.recovery, 30);  // 20 -> 50
  EXPECT_TRUE(r.Recovered());
  EXPECT_EQ(r.max_outage, 40);  // OK at 10 -> OK at 50
}

TEST(Availability, NeverRecoveredIsNegativeAndOutageRunsToWindowEnd) {
  std::vector<HistoryOp> ops = {
      Probe(1, 0, 10, Outcome::kOk),
      Probe(2, 15, 20, Outcome::kError),
      Probe(3, 25, kNoResponse, Outcome::kOpen),
  };
  auto r = ExtractAvailability(ops, 0, 100);
  EXPECT_EQ(r.recovery, -1);
  EXPECT_FALSE(r.Recovered());
  EXPECT_EQ(r.max_outage, 90);  // last OK at 10 -> window end
  EXPECT_DOUBLE_EQ(r.availability, 0.5);
}

TEST(Availability, EmptyWindowIsVacuouslyAvailable) {
  std::vector<HistoryOp> ops;
  auto r = ExtractAvailability(ops, 0, 100);
  EXPECT_EQ(r.probes, 0u);
  EXPECT_DOUBLE_EQ(r.availability, 1.0);
  EXPECT_EQ(r.max_outage, 100);  // zero OK responses: the whole window
}

// ---------------------------------------------------------------------------
// Checker mechanics
// ---------------------------------------------------------------------------

// A same-key history where every op overlaps every other: worst case for
// the search, used to prove the step budget bites instead of hanging.
std::vector<HistoryOp> DenseConcurrentHistory(int writers) {
  std::vector<HistoryOp> ops;
  for (int i = 0; i < writers; ++i) {
    HistoryOp op;
    op.id = ops.size() + 1;
    op.client = static_cast<uint32_t>(i);
    op.kind = OpKind::kPut;
    op.key = "hot";
    op.value_digest = 0x100 + static_cast<uint64_t>(i);
    op.value_size = 8;
    op.invoke = 10;
    op.response = 1000;
    op.outcome = Outcome::kOk;
    ops.push_back(op);
  }
  HistoryOp read;
  read.id = ops.size() + 1;
  read.client = 99;
  read.kind = OpKind::kGet;
  read.key = "hot";
  read.value_digest = 0x100;
  read.value_size = 8;
  read.invoke = 20;
  read.response = 990;
  read.outcome = Outcome::kOk;
  ops.push_back(read);
  return ops;
}

TEST(Checker, StepBudgetReportsInconclusive) {
  auto ops = DenseConcurrentHistory(12);
  CheckOptions opt;
  opt.step_budget = 1;  // starved on purpose
  opt.read_semantics = false;
  opt.minimize_budget = 0;
  CheckReport report = CheckHistory(ops, opt);
  EXPECT_EQ(report.verdict, Verdict::kInconclusive) << report.Summary();
  EXPECT_GE(report.inconclusive_keys, 1u);
  // With a real budget the same history resolves.
  opt.step_budget = 4'000'000;
  EXPECT_EQ(CheckHistory(ops, opt).verdict, Verdict::kLinearizable);
}

TEST(Checker, PerKeyCompositionality) {
  // A violation on one key must not implicate the other keys.
  auto bad = LoadCorpus("stale_read.history");
  auto good = LoadCorpus("linearizable.history");
  std::vector<HistoryOp> merged;
  for (auto& op : good) {
    op.key = "other-" + op.key;  // keep keyspaces disjoint
    op.id = merged.size() + 1;
    merged.push_back(op);
  }
  for (auto& op : bad) {
    op.id = merged.size() + 1;
    merged.push_back(op);
  }
  CheckReport report = CheckHistory(merged);
  EXPECT_EQ(report.verdict, Verdict::kViolation);
  ASSERT_FALSE(report.violations.empty());
  for (const auto& v : report.violations) EXPECT_EQ(v.key, "k0");
  EXPECT_GE(report.keys_checked, 3u);
}

// ---------------------------------------------------------------------------
// Nemesis sweep end-to-end
// ---------------------------------------------------------------------------

NemesisOptions SmokeOptions() {
  NemesisOptions opt;
  opt.base_seed = 0x1eed;
  opt.seeds = 2;
  opt.plan = "none";
  opt.ops_per_client = 120;
  return opt;
}

TEST(NemesisSweep, CleanPipelineIsLinearizable) {
  NemesisResult result = RunNemesisSweep(SmokeOptions());
  ASSERT_EQ(result.seeds.size(), 2u);
  EXPECT_TRUE(result.AllLinearizable())
      << result.violating_seeds << " violating, " << result.inconclusive_seeds
      << " inconclusive";
  for (const auto& s : result.seeds) EXPECT_GT(s.completed, 0u);
}

TEST(NemesisSweep, MutationSmokeDirtyReadsAreFlagged) {
  // The end-to-end self-test of the whole pipeline: disabling CRRS
  // dirty-bit handling (mid-chain replicas answer reads from their last
  // applied version while a write is in flight) must surface as a
  // linearizability violation. If this test fails, the checker could not
  // see a real consistency bug and the CI gate is vacuous.
  NemesisOptions opt = SmokeOptions();
  opt.seeds = 4;
  opt.unsafe_dirty_reads = true;
  NemesisResult result = RunNemesisSweep(opt);
  EXPECT_GT(result.violating_seeds, 0u);
  bool saw_violation_detail = false;
  for (const auto& s : result.seeds) {
    for (const auto& v : s.violations) {
      EXPECT_FALSE(v.key.empty());
      EXPECT_FALSE(v.sub_history.empty());
      saw_violation_detail = true;
    }
  }
  EXPECT_TRUE(saw_violation_detail);
}

TEST(NemesisSweep, ScanMixCleanPipelineIsLinearizable) {
  NemesisOptions opt = SmokeOptions();
  opt.scan_permille = 400;
  opt.scan_limit = 6;
  NemesisResult result = RunNemesisSweep(opt);
  EXPECT_TRUE(result.AllLinearizable())
      << result.violating_seeds << " violating, " << result.inconclusive_seeds
      << " inconclusive";
}

TEST(NemesisSweep, MutationSmokeTornScansAreFlagged) {
  // Same self-test pattern as dirty reads, for the scan path: serving
  // scans without dirty-window parking (test_only_serve_torn_scans) must
  // surface as a linearizability violation under a scan-heavy mix.
  NemesisOptions opt = SmokeOptions();
  opt.seeds = 4;
  opt.scan_permille = 400;
  opt.scan_limit = 6;
  opt.unsafe_torn_scans = true;
  NemesisResult result = RunNemesisSweep(opt);
  EXPECT_GT(result.violating_seeds, 0u);
}

TEST(NemesisSweep, HistoryDumpIsDeterministic) {
  NemesisOptions opt = SmokeOptions();
  opt.seeds = 1;
  auto read_file = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const std::string p1 = ::testing::TempDir() + "/nemesis_run1.history";
  const std::string p2 = ::testing::TempDir() + "/nemesis_run2.history";
  opt.history_out = p1;
  RunNemesisSweep(opt);
  opt.history_out = p2;
  RunNemesisSweep(opt);
  const std::string d1 = read_file(p1);
  const std::string d2 = read_file(p2);
  ASSERT_FALSE(d1.empty());
  EXPECT_EQ(d1, d2) << "same (seed, plan) must produce a byte-identical dump";
}

TEST(NemesisSweep, PlanSpecsResolve) {
  for (const auto& name : NamedNemesisPlans()) {
    auto plan = ResolveNemesisPlan(name);
    ASSERT_TRUE(plan.ok()) << name;
    EXPECT_EQ(plan.value().name, name);
  }
  EXPECT_TRUE(ResolveNemesisPlan("net:delay_p=0.5,delay_us=100").ok());
  EXPECT_FALSE(ResolveNemesisPlan("bogus:nonsense").ok());
}

}  // namespace
}  // namespace leed::check
