// Tests for the durable superblock (checkpoint persistence): encoding,
// CRC validation, A/B slot arbitration, torn-write survival, and the full
// checkpoint -> superblock -> crash -> recover loop. Also covers the
// control plane's copy-reassignment path when a COPY source dies.

#include <gtest/gtest.h>

#include "cluster/control_plane.h"
#include "log/circular_log.h"
#include "sim/block_device.h"
#include "sim/cpu_model.h"
#include "sim/simulator.h"
#include "store/data_store.h"
#include "store/recovery.h"
#include "store/superblock.h"
#include "test_util.h"

namespace leed::store {
namespace {

RecoveryCheckpoint SampleCheckpoint() {
  RecoveryCheckpoint cp;
  RecoveryCheckpoint::LogPointers a;
  a.ssd = 0;
  a.key_head = 1024;
  a.key_tail = 99999;
  a.value_head = 0;
  a.value_tail = 123456789;
  cp.logs.push_back(a);
  RecoveryCheckpoint::LogPointers b;
  b.ssd = 3;
  b.key_head = 7;
  b.key_tail = 8;
  b.value_head = 9;
  b.value_tail = 10;
  cp.logs.push_back(b);
  return cp;
}

TEST(SuperblockCodecTest, RoundTrip) {
  auto bytes = EncodeSuperblock(SampleCheckpoint(), 42);
  EXPECT_EQ(bytes.size(), kSuperblockSlotBytes);
  auto decoded = DecodeSuperblock(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  auto [cp, seq] = std::move(decoded).value();
  EXPECT_EQ(seq, 42u);
  ASSERT_EQ(cp.logs.size(), 2u);
  EXPECT_EQ(cp.logs[0].key_tail, 99999u);
  EXPECT_EQ(cp.logs[1].ssd, 3);
  EXPECT_EQ(cp.logs[1].value_tail, 10u);
}

TEST(SuperblockCodecTest, CrcCatchesCorruption) {
  auto bytes = EncodeSuperblock(SampleCheckpoint(), 1);
  bytes[20] ^= 0x1;  // flip one payload bit
  EXPECT_FALSE(DecodeSuperblock(bytes).ok());
}

TEST(SuperblockCodecTest, BadMagicRejected) {
  std::vector<uint8_t> zeros(kSuperblockSlotBytes, 0);
  EXPECT_FALSE(DecodeSuperblock(zeros).ok());
}

TEST(SuperblockCodecTest, Crc32KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (IEEE).
  const char* s = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(s), 9), 0xCBF43926u);
}

class SuperblockIoTest : public ::testing::Test {
 protected:
  SuperblockIoTest() : device_(sim_, 1 << 20, 512) {}

  Status Write(const RecoveryCheckpoint& cp, uint64_t seq) {
    Status out = Status::Internal("pending");
    bool done = false;
    WriteSuperblock(device_, 0, cp, seq, [&](Status st) {
      out = std::move(st);
      done = true;
    });
    testutil::RunUntilFlag(sim_, done);
    return out;
  }

  Status Read(RecoveryCheckpoint* cp, uint64_t* seq) {
    Status out = Status::Internal("pending");
    bool done = false;
    ReadSuperblock(device_, 0, [&](Status st, RecoveryCheckpoint c, uint64_t s) {
      out = std::move(st);
      *cp = std::move(c);
      *seq = s;
      done = true;
    });
    testutil::RunUntilFlag(sim_, done);
    return out;
  }

  sim::Simulator sim_;
  sim::MemBlockDevice device_;
};

TEST_F(SuperblockIoTest, NewestValidSlotWins) {
  RecoveryCheckpoint cp1 = SampleCheckpoint();
  cp1.logs[0].key_tail = 111;
  RecoveryCheckpoint cp2 = SampleCheckpoint();
  cp2.logs[0].key_tail = 222;
  ASSERT_TRUE(Write(cp1, 10).ok());  // slot 0
  ASSERT_TRUE(Write(cp2, 11).ok());  // slot 1
  RecoveryCheckpoint got;
  uint64_t seq = 0;
  ASSERT_TRUE(Read(&got, &seq).ok());
  EXPECT_EQ(seq, 11u);
  EXPECT_EQ(got.logs[0].key_tail, 222u);
}

TEST_F(SuperblockIoTest, TornNewSlotFallsBackToOld) {
  ASSERT_TRUE(Write(SampleCheckpoint(), 10).ok());  // good slot 0
  // Corrupt slot 1 as if a superblock write tore mid-flight.
  sim::IoRequest garbage;
  garbage.type = sim::IoType::kWrite;
  garbage.offset = kSuperblockSlotBytes;
  garbage.data = std::vector<uint8_t>(kSuperblockSlotBytes, 0xab);
  bool wrote = false;
  device_.Submit(std::move(garbage), [&](sim::IoResult) { wrote = true; });
  testutil::RunUntilFlag(sim_, wrote);

  RecoveryCheckpoint got;
  uint64_t seq = 0;
  ASSERT_TRUE(Read(&got, &seq).ok());
  EXPECT_EQ(seq, 10u);
}

TEST_F(SuperblockIoTest, NoValidSlotIsCorruption) {
  RecoveryCheckpoint got;
  uint64_t seq = 0;
  EXPECT_EQ(Read(&got, &seq).code(), StatusCode::kCorruption);
}

TEST_F(SuperblockIoTest, FullCheckpointRecoverLoop) {
  // Reserve [0, region) for the superblock; the store's logs start after.
  const uint64_t base = kSuperblockRegionBytes;
  sim::CpuCore core(sim_, 3.0);
  auto key_log = std::make_unique<log::CircularLog>(device_, base, 256 << 10);
  auto value_log =
      std::make_unique<log::CircularLog>(device_, base + (256 << 10), 256 << 10);
  StoreConfig cfg;
  cfg.num_segments = 32;
  cfg.bucket_size = 512;
  auto ds = std::make_unique<DataStore>(sim_, core,
                                        LogSet{0, key_log.get(), value_log.get()},
                                        cfg);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        testutil::SyncPut(sim_, *ds, "k" + std::to_string(i), testutil::TestValue(i, 50))
            .ok());
  }
  ASSERT_TRUE(Write(Checkpoint(*ds), 1).ok());
  ds.reset();  // crash

  RecoveryCheckpoint cp;
  uint64_t seq = 0;
  ASSERT_TRUE(Read(&cp, &seq).ok());
  key_log = std::make_unique<log::CircularLog>(device_, base, 256 << 10);
  value_log =
      std::make_unique<log::CircularLog>(device_, base + (256 << 10), 256 << 10);
  ASSERT_TRUE(key_log->Restore(cp.logs[0].key_head, cp.logs[0].key_tail).ok());
  ASSERT_TRUE(
      value_log->Restore(cp.logs[0].value_head, cp.logs[0].value_tail).ok());
  auto recovered = std::make_unique<DataStore>(
      sim_, core, LogSet{0, key_log.get(), value_log.get()}, cfg);
  bool done = false;
  RecoverSegTbl(*recovered, cp, [&](Status st, RecoveryStats) {
    EXPECT_TRUE(st.ok());
    done = true;
  });
  testutil::RunUntilFlag(sim_, done);
  for (int i = 0; i < 30; ++i) {
    std::vector<uint8_t> out;
    ASSERT_TRUE(
        testutil::SyncGet(sim_, *recovered, "k" + std::to_string(i), &out).ok());
    EXPECT_EQ(out, testutil::TestValue(i, 50));
  }
}

}  // namespace
}  // namespace leed::store

// ---------------------------------------------------------------------------
// Control-plane copy reassignment on source death
// ---------------------------------------------------------------------------

namespace leed::cluster {
namespace {

TEST(CopyReassignTest, SourceDeathRedirectsToSurvivor) {
  sim::Simulator sim;
  sim::Network net(sim);
  ControlPlaneConfig ccfg;
  ccfg.replication_factor = 3;
  ccfg.monitor_heartbeats = false;
  ControlPlane cp(sim, net, ccfg);

  struct FakeNode {
    sim::EndpointId ep;
    std::vector<CopyCommandMsg> copies;
    bool respond = true;
  };
  std::vector<std::unique_ptr<FakeNode>> nodes;
  for (int i = 0; i < 4; ++i) {
    auto n = std::make_unique<FakeNode>();
    n->ep = net.AddEndpoint(sim::NicSpec{});
    FakeNode* raw = n.get();
    net.SetReceiver(n->ep, [&net, &cp, raw](sim::Message m) {
      if (auto* c = std::any_cast<CopyCommandMsg>(&m.payload)) {
        raw->copies.push_back(*c);
        if (!raw->respond) return;  // dead-ish source: never finishes
        CopyDoneMsg done;
        done.copy_id = c->copy_id;
        done.dst = c->dst;
        net.Send(raw->ep, cp.endpoint(), 64, done);
      }
    });
    cp.RegisterNode(i, n->ep);
    nodes.push_back(std::move(n));
  }
  for (uint64_t k = 0; k < 8; ++k) {
    cp.Bootstrap(static_cast<uint32_t>(k % 4), static_cast<uint32_t>(k / 4),
                 k * (UINT64_MAX / 8));
  }
  cp.Start();
  sim.Run();

  // Stop every node from completing copies, then start a join: copies hang.
  for (auto& n : nodes) n->respond = false;
  cp.StartJoin(/*owner=*/0, /*store=*/9);
  sim.Run();
  ASSERT_TRUE(cp.TransitionInProgress());

  // Find a node that was asked to stream a copy; kill it. The control plane
  // must re-route its copies to surviving chain members — or, when the
  // copy's *destination* also lived on the killed node, cancel the now-moot
  // fill outright rather than stream it at a dead endpoint.
  int src_node = -1;
  for (int i = 0; i < 4; ++i) {
    if (!nodes[i]->copies.empty()) {
      src_node = i;
      break;
    }
  }
  ASSERT_GE(src_node, 0);
  // Survivors resume completing copies — including replaying completions
  // for commands they received while "slow" (everything except the node we
  // are about to kill).
  for (int i = 0; i < 4; ++i) {
    nodes[i]->respond = (i != src_node);
    if (i == src_node) continue;
    for (const auto& c : nodes[i]->copies) {
      CopyDoneMsg done;
      done.copy_id = c.copy_id;
      done.dst = c.dst;
      net.Send(nodes[i]->ep, cp.endpoint(), 64, done);
    }
  }
  sim.Run();
  size_t commands_before = 0;
  for (auto& n : nodes) commands_before += n->copies.size();

  cp.FailNode(src_node);
  sim.Run();

  size_t commands_after = 0;
  for (auto& n : nodes) commands_after += n->copies.size();
  EXPECT_GT(commands_after, commands_before);  // re-issued somewhere
  EXPECT_GT(cp.stats().copies_reassigned + cp.stats().copies_abandoned +
                cp.stats().copies_cancelled,
            0u);
  EXPECT_FALSE(cp.TransitionInProgress());  // nothing wedged
}

}  // namespace
}  // namespace leed::cluster
