// Tests for the intra-JBOF engine: the lock-free SPSC ring (including a
// real multi-threaded stress test), the adaptive token pool, and the
// IoEngine's admission / queueing / data-swap behaviour.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "engine/io_engine.h"
#include "engine/spsc_ring.h"
#include "engine/token_bucket.h"
#include "sim/cpu_model.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace leed::engine {
namespace {

// ---------------------------------------------------------------------------
// SPSC ring
// ---------------------------------------------------------------------------

TEST(SpscRingTest, FifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.TryPush(i));
  for (int i = 0; i < 5; ++i) {
    auto v = ring.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(SpscRingTest, FullAndEmptyBoundaries) {
  SpscRing<int> ring(4);  // rounds to capacity >= 4
  size_t pushed = 0;
  while (ring.TryPush(static_cast<int>(pushed))) ++pushed;
  EXPECT_GE(pushed, 4u);
  EXPECT_EQ(ring.Size(), pushed);
  while (ring.TryPop().has_value()) {
  }
  EXPECT_TRUE(ring.Empty());
  // Reusable after wrap.
  EXPECT_TRUE(ring.TryPush(42));
  EXPECT_EQ(*ring.TryPop(), 42);
}

TEST(SpscRingTest, FrontPeeksWithoutConsuming) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.Front(), nullptr);
  ring.TryPush(9);
  ASSERT_NE(ring.Front(), nullptr);
  EXPECT_EQ(*ring.Front(), 9);
  EXPECT_EQ(ring.Size(), 1u);
}

TEST(SpscRingTest, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.TryPush(std::make_unique<int>(5)));
  auto v = ring.TryPop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

TEST(SpscRingTest, TwoThreadStress) {
  // Real concurrency: one producer, one consumer, 1M items, values must
  // arrive exactly once and in order.
  constexpr uint64_t kItems = 1'000'000;
  SpscRing<uint64_t> ring(1024);
  std::atomic<bool> fail{false};

  std::thread producer([&] {
    for (uint64_t i = 0; i < kItems; ++i) {
      while (!ring.TryPush(i)) std::this_thread::yield();
    }
  });
  std::thread consumer([&] {
    uint64_t expected = 0;
    while (expected < kItems) {
      auto v = ring.TryPop();
      if (!v) {
        std::this_thread::yield();
        continue;
      }
      if (*v != expected) {
        fail = true;
        break;
      }
      ++expected;
    }
  });
  producer.join();
  consumer.join();
  EXPECT_FALSE(fail.load());
  EXPECT_TRUE(ring.Empty());
}

// ---------------------------------------------------------------------------
// Token pool
// ---------------------------------------------------------------------------

TEST(TokenPoolTest, TakeAndRefund) {
  TokenConfig cfg;
  cfg.base_tokens = 10;
  TokenPool pool(cfg);
  EXPECT_EQ(pool.available(), 10u);
  EXPECT_TRUE(pool.TryTake(3));
  EXPECT_EQ(pool.available(), 7u);
  EXPECT_FALSE(pool.TryTake(8));
  pool.Refund(3);
  EXPECT_EQ(pool.available(), 10u);
}

TEST(TokenPoolTest, SlowDeviceShrinksCapacity) {
  TokenConfig cfg;
  cfg.base_tokens = 100;
  cfg.reference_latency_ns = 60 * kMicrosecond;
  cfg.ewma_alpha = 0.5;  // fast adaptation for the test
  TokenPool pool(cfg);
  for (int i = 0; i < 20; ++i) pool.OnIoCompleted(600 * kMicrosecond);  // 10x slow
  EXPECT_LT(pool.capacity(), 20u);
  EXPECT_GE(pool.capacity(), cfg.min_tokens);
  // Recovery when the device speeds back up.
  for (int i = 0; i < 40; ++i) pool.OnIoCompleted(60 * kMicrosecond);
  EXPECT_GT(pool.capacity(), 80u);
  EXPECT_LE(pool.capacity(), cfg.max_tokens);
}

TEST(TokenPoolTest, RescaleRespectsOutstanding) {
  TokenConfig cfg;
  cfg.base_tokens = 100;
  cfg.ewma_alpha = 1.0;
  TokenPool pool(cfg);
  ASSERT_TRUE(pool.TryTake(60));
  pool.OnIoCompleted(cfg.reference_latency_ns * 2);  // capacity halves to 50
  EXPECT_EQ(pool.capacity(), 50u);
  EXPECT_EQ(pool.available(), 0u);  // 60 outstanding > 50 capacity
  pool.Refund(60);
  EXPECT_EQ(pool.available(), 50u);
}

TEST(TokenPoolTest, CostsMatchAccessCounts) {
  TokenConfig cfg;
  EXPECT_EQ(TokenCost(cfg, OpType::kGet), 2u);
  EXPECT_EQ(TokenCost(cfg, OpType::kPut), 3u);
  EXPECT_EQ(TokenCost(cfg, OpType::kDel), 2u);
}

// ---------------------------------------------------------------------------
// IoEngine
// ---------------------------------------------------------------------------

class IoEngineTest : public ::testing::Test {
 protected:
  EngineConfig SmallEngine(uint32_t ssds = 2) {
    EngineConfig cfg;
    cfg.ssd_count = ssds;
    cfg.stores_per_ssd = 2;
    cfg.ssd = sim::Dct983Spec();
    cfg.ssd.capacity_bytes = 1ull << 30;  // 1 GB keeps the page store small
    cfg.ssd.latency_jitter = 0;
    cfg.ssd.slow_io_prob = 0;
    cfg.store_template.num_segments = 256;
    cfg.store_template.bucket_size = 512;
    cfg.wait_queue_capacity = 64;
    cfg.swap_check_period = 100 * kMicrosecond;
    cfg.swap_gap_threshold = 8;
    return cfg;
  }

  Status SyncOp(IoEngine& engine, OpType type, const std::string& key,
                std::vector<uint8_t> value, uint32_t store,
                std::vector<uint8_t>* out = nullptr) {
    Status result = Status::Internal("no callback");
    bool done = false;
    Request req;
    req.type = type;
    req.key = key;
    req.value = std::move(value);
    req.store_id = store;
    req.callback = [&](Status st, std::vector<uint8_t> v, ResponseMeta) {
      result = std::move(st);
      if (out) *out = std::move(v);
      done = true;
    };
    engine.Submit(std::move(req));
    testutil::RunUntilFlag(sim_, done);
    EXPECT_TRUE(done);
    return result;
  }

  sim::Simulator sim_;
};

TEST_F(IoEngineTest, EndToEndPutGet) {
  sim::CpuModel cpu(sim_, 8, 3.0);
  IoEngine engine(sim_, cpu, SmallEngine(), 1);
  EXPECT_EQ(engine.num_stores(), 4u);
  auto value = testutil::TestValue(5, 256);
  ASSERT_TRUE(SyncOp(engine, OpType::kPut, "k1", value, 3).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(SyncOp(engine, OpType::kGet, "k1", {}, 3, &out).ok());
  EXPECT_EQ(out, value);
  ASSERT_TRUE(SyncOp(engine, OpType::kDel, "k1", {}, 3).ok());
  EXPECT_TRUE(SyncOp(engine, OpType::kGet, "k1", {}, 3).IsNotFound());
  EXPECT_EQ(engine.stats().completed, 4u);
}

TEST_F(IoEngineTest, StoresAreIndependent) {
  sim::CpuModel cpu(sim_, 8, 3.0);
  IoEngine engine(sim_, cpu, SmallEngine(), 1);
  ASSERT_TRUE(SyncOp(engine, OpType::kPut, "same-key", testutil::TestValue(1, 32), 0).ok());
  ASSERT_TRUE(SyncOp(engine, OpType::kPut, "same-key", testutil::TestValue(2, 32), 1).ok());
  std::vector<uint8_t> a, b;
  ASSERT_TRUE(SyncOp(engine, OpType::kGet, "same-key", {}, 0, &a).ok());
  ASSERT_TRUE(SyncOp(engine, OpType::kGet, "same-key", {}, 1, &b).ok());
  EXPECT_EQ(a, testutil::TestValue(1, 32));
  EXPECT_EQ(b, testutil::TestValue(2, 32));
}

TEST_F(IoEngineTest, AdmissionQueuesBeyondTokens) {
  sim::CpuModel cpu(sim_, 8, 3.0);
  EngineConfig cfg = SmallEngine(1);
  cfg.tokens.base_tokens = 6;  // 3 concurrent GETs
  cfg.tokens.min_tokens = 6;
  cfg.tokens.max_tokens = 6;
  IoEngine engine(sim_, cpu, cfg, 1);
  // Preload one key.
  ASSERT_TRUE(SyncOp(engine, OpType::kPut, "k", testutil::TestValue(1, 32), 0).ok());

  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    Request req;
    req.type = OpType::kGet;
    req.key = "k";
    req.store_id = 0;
    req.callback = [&](Status st, std::vector<uint8_t>, ResponseMeta) {
      EXPECT_TRUE(st.ok());
      ++completed;
    };
    engine.Submit(std::move(req));
  }
  EXPECT_GT(engine.WaitQueueDepth(0), 0u);  // waiting queue absorbed overflow
  sim_.Run();
  EXPECT_EQ(completed, 20);
  EXPECT_GT(engine.stats().waited, 0u);
}

TEST_F(IoEngineTest, FullWaitingQueueRejectsOverloaded) {
  sim::CpuModel cpu(sim_, 8, 3.0);
  EngineConfig cfg = SmallEngine(1);
  cfg.tokens.base_tokens = 2;
  cfg.tokens.min_tokens = 2;
  cfg.tokens.max_tokens = 2;
  cfg.wait_queue_capacity = 4;
  IoEngine engine(sim_, cpu, cfg, 1);
  int overloaded = 0, accepted = 0;
  for (int i = 0; i < 40; ++i) {
    Request req;
    req.type = OpType::kGet;
    req.key = "missing";
    req.store_id = 0;
    req.callback = [&](Status st, std::vector<uint8_t>, ResponseMeta meta) {
      if (st.IsOverloaded()) {
        ++overloaded;
        EXPECT_EQ(meta.ssd, 0u);
      } else {
        ++accepted;
      }
    };
    engine.Submit(std::move(req));
  }
  sim_.Run();
  EXPECT_GT(overloaded, 0);
  EXPECT_GT(accepted, 0);
  EXPECT_EQ(engine.stats().rejected_overloaded, static_cast<uint64_t>(overloaded));
}

TEST_F(IoEngineTest, TokensPropagateInResponseMeta) {
  sim::CpuModel cpu(sim_, 8, 3.0);
  IoEngine engine(sim_, cpu, SmallEngine(1), 1);
  uint32_t seen_tokens = 0;
  Request req;
  req.type = OpType::kGet;
  req.key = "nothing";
  req.store_id = 0;
  req.callback = [&](Status, std::vector<uint8_t>, ResponseMeta meta) {
    seen_tokens = meta.available_tokens;
  };
  engine.Submit(std::move(req));
  sim_.Run();
  EXPECT_GT(seen_tokens, 0u);
}

TEST_F(IoEngineTest, DataSwapActivatesUnderImbalance) {
  sim::CpuModel cpu(sim_, 8, 3.0);
  EngineConfig cfg = SmallEngine(2);
  cfg.tokens.base_tokens = 4;  // SSD 0 backs up fast
  cfg.tokens.min_tokens = 4;
  cfg.tokens.max_tokens = 4;
  cfg.wait_queue_capacity = 128;
  IoEngine engine(sim_, cpu, cfg, 1);

  int done = 0;
  for (int i = 0; i < 120; ++i) {
    Request req;
    req.type = OpType::kPut;
    req.key = "key" + std::to_string(i);
    req.value = testutil::TestValue(i, 128);
    req.store_id = 0;  // all writes hammer SSD 0
    req.callback = [&](Status, std::vector<uint8_t>, ResponseMeta) { ++done; };
    engine.Submit(std::move(req));
  }
  sim_.Run();
  EXPECT_EQ(done, 120);
  EXPECT_GT(engine.stats().swap_activations, 0u);
  // Values written during the overload are readable afterwards.
  std::vector<uint8_t> out;
  ASSERT_TRUE(SyncOp(engine, OpType::kGet, "key100", {}, 0, &out).ok());
  EXPECT_EQ(out, testutil::TestValue(100, 128));
}

TEST_F(IoEngineTest, SwappedWritesAdmitAgainstDonorPool) {
  sim::CpuModel cpu(sim_, 8, 3.0);
  EngineConfig cfg = SmallEngine(2);
  cfg.enable_data_swap = true;
  IoEngine engine(sim_, cpu, cfg, 1);
  // Force a swap target directly (bypassing the watchdog) and verify a PUT
  // consumes the DONOR's tokens — §3.6's "another one's active queue".
  engine.data_store(0).SetSwapTarget(1);
  ASSERT_TRUE(engine.SwapTargetOf(0).has_value());

  uint32_t home_before = engine.AvailableTokens(0);
  uint32_t donor_before = engine.AvailableTokens(1);
  Request req;
  req.type = OpType::kPut;
  req.key = "swap-admit";
  req.value = testutil::TestValue(1, 64);
  req.store_id = 0;
  bool done = false;
  req.callback = [&](Status st, std::vector<uint8_t>, ResponseMeta meta) {
    EXPECT_TRUE(st.ok());
    EXPECT_EQ(meta.ssd, 1u);  // admitted against the donor
    done = true;
  };
  engine.Submit(std::move(req));
  // Tokens were taken from the donor pool, not the home pool.
  EXPECT_EQ(engine.AvailableTokens(0), home_before);
  EXPECT_LT(engine.AvailableTokens(1), donor_before);
  sim_.Run();
  EXPECT_TRUE(done);
  // GETs still admit against the home SSD.
  uint32_t donor_mid = engine.AvailableTokens(1);
  Request get;
  get.type = OpType::kGet;
  get.key = "swap-admit";
  get.store_id = 0;
  bool got = false;
  get.callback = [&](Status st, std::vector<uint8_t> v, ResponseMeta meta) {
    EXPECT_TRUE(st.ok());
    EXPECT_EQ(v, testutil::TestValue(1, 64));
    EXPECT_EQ(meta.ssd, 0u);
    got = true;
  };
  engine.Submit(std::move(get));
  EXPECT_EQ(engine.AvailableTokens(1), donor_mid);
  sim_.Run();
  EXPECT_TRUE(got);
}

TEST_F(IoEngineTest, SwapDisabledNeverActivates) {
  sim::CpuModel cpu(sim_, 8, 3.0);
  EngineConfig cfg = SmallEngine(2);
  cfg.enable_data_swap = false;
  cfg.tokens.base_tokens = 4;
  cfg.tokens.min_tokens = 4;
  cfg.tokens.max_tokens = 4;
  IoEngine engine(sim_, cpu, cfg, 1);
  int done = 0;
  for (int i = 0; i < 60; ++i) {
    Request req;
    req.type = OpType::kPut;
    req.key = "key" + std::to_string(i);
    req.value = testutil::TestValue(i, 128);
    req.store_id = 0;
    req.callback = [&](Status, std::vector<uint8_t>, ResponseMeta) { ++done; };
    engine.Submit(std::move(req));
  }
  sim_.Run();
  EXPECT_EQ(engine.stats().swap_activations, 0u);
}

TEST_F(IoEngineTest, AdmissionControlOffIsFcfs) {
  sim::CpuModel cpu(sim_, 8, 3.0);
  EngineConfig cfg = SmallEngine(1);
  cfg.tokens.base_tokens = 2;
  IoEngine engine(sim_, cpu, cfg, 1);
  engine.set_admission_control(false);
  int done = 0;
  for (int i = 0; i < 50; ++i) {
    Request req;
    req.type = OpType::kGet;
    req.key = "x";
    req.store_id = 0;
    req.callback = [&](Status, std::vector<uint8_t>, ResponseMeta) { ++done; };
    engine.Submit(std::move(req));
  }
  sim_.Run();
  EXPECT_EQ(done, 50);
  EXPECT_EQ(engine.stats().rejected_overloaded, 0u);
  EXPECT_EQ(engine.stats().waited, 0u);  // everything fired immediately
}

}  // namespace
}  // namespace leed::engine
