// Unit tests for the common substrate: Status/Result, hashing, RNG, Zipf,
// histogram.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "common/hash.h"
#include "common/histogram.h"
#include "common/rand.h"
#include "common/status.h"
#include "common/zipf.h"

namespace leed {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "ok");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status nf = Status::NotFound("key absent");
  EXPECT_FALSE(nf.ok());
  EXPECT_TRUE(nf.IsNotFound());
  EXPECT_EQ(nf.ToString(), "not_found: key absent");

  EXPECT_TRUE(Status::Overloaded().IsOverloaded());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::WrongView().IsWrongView());
  EXPECT_EQ(Status::OutOfSpace().code(), StatusCode::kOutOfSpace);
  EXPECT_EQ(Status::Corruption().code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unavailable().code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Internal().code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument().code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound() == Status::Busy());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeName(StatusCode::kWrongView), "wrong_view");
  EXPECT_EQ(StatusCodeName(StatusCode::kOverloaded), "overloaded");
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(good.value_or(-1), 42);

  Result<int> bad(Status::NotFound());
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound());
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

TEST(HashTest, Fnv1aMatchesKnownVector) {
  // FNV-1a 64-bit of empty string is the offset basis.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  // "a" -> standard test vector.
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(HashTest, DeterministicAndSeedSensitive) {
  EXPECT_EQ(HashKey("user42", 1), HashKey("user42", 1));
  EXPECT_NE(HashKey("user42", 1), HashKey("user42", 2));
  EXPECT_NE(HashKey("user42", 1), HashKey("user43", 1));
}

TEST(HashTest, Mix64Avalanches) {
  // Flipping one input bit should flip roughly half the output bits.
  int total = 0;
  for (uint64_t i = 0; i < 64; ++i) {
    uint64_t a = Mix64(0x123456789abcdefULL);
    uint64_t b = Mix64(0x123456789abcdefULL ^ (1ULL << i));
    total += __builtin_popcountll(a ^ b);
  }
  double avg = total / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashTest, KeyHashDistributesAcrossBuckets) {
  constexpr int kBuckets = 64;
  constexpr int kKeys = 64000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kKeys; ++i) {
    counts[HashKey("key" + std::to_string(i), 7) % kBuckets]++;
  }
  const double expect = static_cast<double>(kKeys) / kBuckets;
  for (int c : counts) {
    EXPECT_GT(c, expect * 0.8);
    EXPECT_LT(c, expect * 1.2);
  }
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) counts[rng.NextBounded(10)]++;
  for (int c : counts) {
    EXPECT_GT(c, 9300);
    EXPECT_LT(c, 10700);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(5);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.NextExponential(50.0);
  EXPECT_NEAR(sum / kN, 50.0, 1.0);
}

// ---------------------------------------------------------------------------
// Zipf
// ---------------------------------------------------------------------------

TEST(ZipfTest, ZetaSumMatchesClosedForms) {
  EXPECT_NEAR(ZetaSum(1, 0.99), 1.0, 1e-12);
  // theta=0 -> harmonic of ones -> n.
  EXPECT_NEAR(ZetaSum(100, 0.0), 100.0, 1e-9);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfGenerator gen(100, 0.0, /*scramble=*/false);
  Rng rng(1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) counts[gen.Next(rng)]++;
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(ZipfTest, HotItemGetsTheoreticalShare) {
  constexpr uint64_t kN = 10000;
  constexpr double kTheta = 0.99;
  ZipfGenerator gen(kN, kTheta, /*scramble=*/false);
  Rng rng(2);
  constexpr int kSamples = 400000;
  uint64_t hot = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (gen.Next(rng) == 0) ++hot;
  }
  const double expected = gen.TopItemProbability();
  EXPECT_NEAR(static_cast<double>(hot) / kSamples, expected, expected * 0.1);
}

TEST(ZipfTest, HigherSkewConcentratesMore) {
  Rng rng(3);
  auto top_share = [&](double theta) {
    ZipfGenerator gen(100000, theta, /*scramble=*/false);
    int hits = 0;
    for (int i = 0; i < 100000; ++i) {
      if (gen.Next(rng) < 100) ++hits;  // share of top-100 ranks
    }
    return hits;
  };
  int low = top_share(0.5);
  int high = top_share(0.99);
  EXPECT_GT(high, low * 2);
}

TEST(ZipfTest, ScrambleSpreadsHotKeyButPreservesSkew) {
  ZipfGenerator gen(100000, 0.99, /*scramble=*/true);
  Rng rng(4);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 200000; ++i) counts[gen.Next(rng)]++;
  // The hottest scrambled item should match HottestItem().
  uint64_t argmax = 0;
  int best = 0;
  for (auto& [k, c] : counts) {
    if (c > best) {
      best = c;
      argmax = k;
    }
  }
  EXPECT_EQ(argmax, gen.HottestItem());
  // And it should not be rank 0 (scrambled away) for this size.
  EXPECT_NE(argmax, 0u);
}

TEST(ZipfTest, SamplesStayInRange) {
  ZipfGenerator gen(1000, 0.9);
  Rng rng(5);
  for (int i = 0; i < 50000; ++i) EXPECT_LT(gen.Next(rng), 1000u);
}

// Regression: theta == 1.0 used to divide by zero (alpha = 1/(1-theta)),
// silently collapsing the whole distribution onto ranks {0, 1, n-1}.
// Sanity-check the distribution shape for theta in {0.99, 1.0}.
TEST(ZipfTest, ThetaNearOneDistributionSanity) {
  for (double theta : {0.99, 1.0}) {
    constexpr uint64_t kN = 1000;
    constexpr int kSamples = 200000;
    ZipfGenerator gen(kN, theta, /*scramble=*/false);
    Rng rng(6);
    std::vector<int> counts(kN, 0);
    for (int i = 0; i < kSamples; ++i) {
      uint64_t v = gen.Next(rng);
      ASSERT_LT(v, kN) << "theta=" << theta;
      counts[v]++;
    }
    // Head share matches 1/zeta(n): the uz < 1 branch is exact for both.
    const double expected = gen.TopItemProbability();
    EXPECT_NEAR(static_cast<double>(counts[0]) / kSamples, expected,
                expected * 0.12)
        << "theta=" << theta;
    // The tail must not be collapsed: the old bug left only {0, 1, n-1}
    // populated. A healthy zipfian hits hundreds of distinct ranks here.
    int distinct = 0;
    for (int c : counts) distinct += (c > 0) ? 1 : 0;
    EXPECT_GT(distinct, 300) << "theta=" << theta;
    // Monotone head: rank 0 strictly hotter than rank 1, which beats the
    // middle of the tail by a wide margin.
    EXPECT_GT(counts[0], counts[1]) << "theta=" << theta;
    EXPECT_GT(counts[1], counts[kN / 2] * 2) << "theta=" << theta;
    // No artificial mass spike on the last rank (the old collapse dumped
    // the whole tail there).
    EXPECT_LT(counts[kN - 1], counts[0] / 4) << "theta=" << theta;
  }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.P999(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
  EXPECT_NEAR(h.P50(), 42.0, 42.0 * 0.02);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
  EXPECT_DOUBLE_EQ(h.min(), 42.0);
}

TEST(HistogramTest, PercentilesWithinRelativeError) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.Record(static_cast<double>(i));
  EXPECT_NEAR(h.P50(), 5000, 5000 * 0.03);
  EXPECT_NEAR(h.P99(), 9900, 9900 * 0.03);
  EXPECT_NEAR(h.P999(), 9990, 9990 * 0.03);
  EXPECT_NEAR(h.Percentile(1.0), 10000, 10000 * 0.03);
}

TEST(HistogramTest, WideDynamicRange) {
  Histogram h;
  h.Record(0.5);          // sub-microsecond
  h.Record(1e6);          // a second in us
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.max(), 1e6);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(10);
  for (int i = 0; i < 100; ++i) b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_NEAR(a.Mean(), 505, 20);
  EXPECT_NEAR(a.Percentile(0.25), 10, 1);
  EXPECT_NEAR(a.Percentile(0.75), 1000, 35);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(HistogramTest, RecordNWeights) {
  Histogram h;
  h.RecordN(100.0, 50);
  EXPECT_EQ(h.count(), 50u);
  EXPECT_NEAR(h.Mean(), 100.0, 1e-9);
}

// Regression: negative frexp exponents used to clamp to 0, so every value
// in (0, 1) aliased into the exponent-0 buckets — 0.3 and 0.6 shared a
// midpoint and sub-unity percentiles were fiction.
TEST(HistogramTest, SubUnityValuesResolve) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(0.3);
  for (int i = 0; i < 1000; ++i) h.Record(0.6);
  // The two populations land in different buckets, so the quartiles
  // straddle them instead of reporting one shared midpoint.
  EXPECT_NEAR(h.Percentile(0.25), 0.3, 0.3 * 0.05);
  EXPECT_NEAR(h.Percentile(0.75), 0.6, 0.6 * 0.05);
  // Relative error holds across the sub-unity decades too.
  Histogram fine;
  fine.Record(0.001);
  EXPECT_NEAR(fine.P50(), 0.001, 0.001 * 0.02);
}

TEST(HistogramTest, SummaryMentionsStats) {
  Histogram h;
  h.Record(10);
  std::string s = h.Summary("us");
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("p999"), std::string::npos);
}

}  // namespace
}  // namespace leed
