// End-to-end integration tests: a full simulated LEED cluster (control
// plane + JBOF nodes + clients) exercising replication, CRRS read shipping,
// flow control, membership changes (join/leave), and fail-stop recovery.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "leed/cluster_sim.h"
#include "test_util.h"

namespace leed {
namespace {

ClusterConfig SmallLeedCluster(uint32_t nodes = 3, bool crrs = true) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.num_clients = 1;
  cfg.seed = 0xabc;

  cfg.node.platform = sim::StingrayJbof();
  cfg.node.stack = StackKind::kLeed;
  cfg.node.crrs = crrs;
  cfg.node.engine.ssd_count = 2;
  cfg.node.engine.stores_per_ssd = 2;
  cfg.node.engine.ssd = sim::Dct983Spec();
  cfg.node.engine.ssd.capacity_bytes = 1ull << 30;
  cfg.node.engine.ssd.latency_jitter = 0;
  cfg.node.engine.ssd.slow_io_prob = 0;
  cfg.node.engine.store_template.num_segments = 512;
  cfg.node.engine.store_template.bucket_size = 512;

  cfg.client.crrs_reads = crrs;
  cfg.client.stores_per_ssd = 2;
  cfg.client.request_timeout = 50 * kMillisecond;

  cfg.control_plane.replication_factor = 3;
  cfg.control_plane.heartbeat_period = 10 * kMillisecond;
  cfg.control_plane.failure_timeout = 50 * kMillisecond;
  return cfg;
}

Status ClusterPut(ClusterSim& cluster, const std::string& key,
                  std::vector<uint8_t> value) {
  Status out = Status::Internal("no cb");
  bool done = false;
  cluster.client(0).Put(key, std::move(value), [&](Status st, SimTime) {
    out = std::move(st);
    done = true;
  });
  while (!done && cluster.simulator().events_pending() > 0 &&
         cluster.simulator().Step()) {
  }
  EXPECT_TRUE(done);
  return out;
}

Status ClusterGet(ClusterSim& cluster, const std::string& key,
                  std::vector<uint8_t>* value_out = nullptr) {
  Status out = Status::Internal("no cb");
  bool done = false;
  cluster.client(0).Get(key, [&](Status st, std::vector<uint8_t> v, SimTime) {
    out = std::move(st);
    if (value_out) *value_out = std::move(v);
    done = true;
  });
  while (!done && cluster.simulator().events_pending() > 0 &&
         cluster.simulator().Step()) {
  }
  EXPECT_TRUE(done);
  return out;
}

Status ClusterDel(ClusterSim& cluster, const std::string& key) {
  Status out = Status::Internal("no cb");
  bool done = false;
  cluster.client(0).Del(key, [&](Status st, SimTime) {
    out = std::move(st);
    done = true;
  });
  while (!done && cluster.simulator().events_pending() > 0 &&
         cluster.simulator().Step()) {
  }
  EXPECT_TRUE(done);
  return out;
}

TEST(IntegrationTest, BootstrapCreatesChainDisjointVnodes) {
  ClusterSim cluster(SmallLeedCluster());
  cluster.Bootstrap();
  const auto& view = cluster.control_plane().view();
  EXPECT_EQ(view.vnodes.size(), 12u);  // 3 nodes x 4 stores
  // Every chain spans 3 distinct physical nodes.
  for (int i = 0; i < 50; ++i) {
    auto chain = view.ChainForKey("probe" + std::to_string(i));
    ASSERT_EQ(chain.size(), 3u);
    std::set<uint32_t> owners;
    for (auto v : chain) owners.insert(view.Find(v)->owner_node);
    EXPECT_EQ(owners.size(), 3u);
  }
}

TEST(IntegrationTest, PutGetDelAcrossTheWire) {
  ClusterSim cluster(SmallLeedCluster());
  cluster.Bootstrap();
  auto value = testutil::TestValue(1, 256);
  ASSERT_TRUE(ClusterPut(cluster, "user1", value).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(ClusterGet(cluster, "user1", &out).ok());
  EXPECT_EQ(out, value);
  ASSERT_TRUE(ClusterDel(cluster, "user1").ok());
  EXPECT_TRUE(ClusterGet(cluster, "user1").IsNotFound());
}

TEST(IntegrationTest, WritesReplicateToAllChainMembers) {
  ClusterSim cluster(SmallLeedCluster());
  cluster.Bootstrap();
  ASSERT_TRUE(ClusterPut(cluster, "replicated", testutil::TestValue(2, 128)).ok());
  cluster.simulator().RunUntil(cluster.simulator().Now() + 50 * kMillisecond);

  // Every chain member must hold the value in its local store (acks applied).
  const auto& view = cluster.control_plane().view();
  auto chain = view.ChainForKey("replicated");
  ASSERT_EQ(chain.size(), 3u);
  int holders = 0;
  for (auto vid : chain) {
    const auto* info = view.Find(vid);
    auto& ds = cluster.node(info->owner_node)
                   .leed_engine()
                   ->data_store(info->local_store);
    bool done = false;
    Status st = Status::Internal("x");
    ds.Get("replicated", [&](Status s, std::vector<uint8_t>) {
      st = std::move(s);
      done = true;
    });
    while (!done && cluster.simulator().events_pending() > 0 &&
           cluster.simulator().Step()) {
    }
    if (st.ok()) ++holders;
  }
  EXPECT_EQ(holders, 3);
}

TEST(IntegrationTest, ManyKeysRoundTrip) {
  ClusterSim cluster(SmallLeedCluster());
  cluster.Bootstrap();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        ClusterPut(cluster, "key" + std::to_string(i), testutil::TestValue(i, 100))
            .ok())
        << i;
  }
  for (int i = 0; i < 100; ++i) {
    std::vector<uint8_t> out;
    ASSERT_TRUE(ClusterGet(cluster, "key" + std::to_string(i), &out).ok()) << i;
    EXPECT_EQ(out, testutil::TestValue(i, 100)) << i;
  }
}

TEST(IntegrationTest, PreloadMakesKeysVisible) {
  ClusterSim cluster(SmallLeedCluster());
  cluster.Bootstrap();
  cluster.Preload(200, 128);
  workload::YcsbConfig wc;
  wc.num_keys = 200;
  wc.value_size = 128;
  workload::YcsbGenerator gen(wc);
  for (uint64_t i = 0; i < 200; i += 17) {
    std::vector<uint8_t> out;
    ASSERT_TRUE(ClusterGet(cluster, workload::YcsbGenerator::KeyName(i), &out).ok())
        << i;
    EXPECT_EQ(out, gen.MakeValue(i));
  }
}

TEST(IntegrationTest, CrrsShipsDirtyReads) {
  ClusterSim cluster(SmallLeedCluster(3, /*crrs=*/true));
  cluster.Bootstrap();
  cluster.Preload(50, 128);
  // Hammer interleaved writes+reads of the same keys; reads landing on a
  // dirty replica must be shipped to the tail, never returning stale or
  // failing.
  int outstanding = 0;
  int read_errors = 0;
  auto& c = cluster.client(0);
  for (int round = 0; round < 30; ++round) {
    for (int k = 0; k < 10; ++k) {
      std::string key = workload::YcsbGenerator::KeyName(k);
      ++outstanding;
      c.Put(key, testutil::TestValue(round, 128),
            [&](Status st, SimTime) {
              EXPECT_TRUE(st.ok());
              --outstanding;
            });
      ++outstanding;
      c.Get(key, [&](Status st, std::vector<uint8_t>, SimTime) {
        if (!st.ok() && !st.IsNotFound()) ++read_errors;
        --outstanding;
      });
    }
  }
  cluster.simulator().Run();
  EXPECT_EQ(outstanding, 0);
  EXPECT_EQ(read_errors, 0);
  uint64_t shipped = 0;
  for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    shipped += cluster.node(n).stats().reads_shipped;
  }
  EXPECT_GT(shipped, 0u);  // dirty-bit shipping actually exercised
}

TEST(IntegrationTest, BaselineCrServesReadsFromTailOnly) {
  ClusterSim cluster(SmallLeedCluster(3, /*crrs=*/false));
  cluster.Bootstrap();
  ASSERT_TRUE(ClusterPut(cluster, "k", testutil::TestValue(1, 64)).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(ClusterGet(cluster, "k", &out).ok());
  EXPECT_EQ(out, testutil::TestValue(1, 64));
}

TEST(IntegrationTest, NodeJoinMovesDataAndStaysConsistent) {
  ClusterSim cluster(SmallLeedCluster());
  cluster.Bootstrap();
  cluster.Preload(300, 128);

  uint32_t new_node = cluster.JoinNode();
  // Let all COPY transitions complete.
  cluster.simulator().RunUntil(cluster.simulator().Now() + 5 * kSecond);
  EXPECT_FALSE(cluster.control_plane().TransitionInProgress());

  const auto& view = cluster.control_plane().view();
  // The new node's vnodes are RUNNING and own ring arcs.
  int running_on_new = 0;
  for (const auto& [id, info] : view.vnodes) {
    if (info.owner_node == new_node &&
        info.state == cluster::VNodeState::kRunning) {
      ++running_on_new;
    }
  }
  EXPECT_GT(running_on_new, 0);
  EXPECT_TRUE(view.filling.empty());

  // All preloaded keys still readable with correct values.
  workload::YcsbConfig wc;
  wc.num_keys = 300;
  wc.value_size = 128;
  workload::YcsbGenerator gen(wc);
  for (uint64_t i = 0; i < 300; i += 13) {
    std::vector<uint8_t> out;
    Status st = ClusterGet(cluster, workload::YcsbGenerator::KeyName(i), &out);
    ASSERT_TRUE(st.ok()) << "key " << i << ": " << st.ToString();
    EXPECT_EQ(out, gen.MakeValue(i)) << i;
  }
}

TEST(IntegrationTest, NodeLeaveDrainsData) {
  ClusterConfig cfg = SmallLeedCluster(4);
  ClusterSim cluster(cfg);
  cluster.Bootstrap();
  cluster.Preload(300, 128);

  cluster.LeaveNode(3);
  cluster.simulator().RunUntil(cluster.simulator().Now() + 5 * kSecond);
  EXPECT_FALSE(cluster.control_plane().TransitionInProgress());

  const auto& view = cluster.control_plane().view();
  for (const auto& [id, info] : view.vnodes) {
    EXPECT_NE(info.owner_node, 3u) << "vnode " << id << " still on left node";
  }
  workload::YcsbConfig wc;
  wc.num_keys = 300;
  wc.value_size = 128;
  workload::YcsbGenerator gen(wc);
  for (uint64_t i = 0; i < 300; i += 11) {
    std::vector<uint8_t> out;
    Status st = ClusterGet(cluster, workload::YcsbGenerator::KeyName(i), &out);
    ASSERT_TRUE(st.ok()) << "key " << i << ": " << st.ToString();
    EXPECT_EQ(out, gen.MakeValue(i)) << i;
  }
}

TEST(IntegrationTest, NodeFailureIsDetectedAndRepaired) {
  ClusterConfig cfg = SmallLeedCluster(4);
  ClusterSim cluster(cfg);
  cluster.Bootstrap();
  cluster.Preload(200, 128);

  cluster.KillNode(2);
  // Heartbeat timeout (50ms) + detection + re-replication copies.
  cluster.simulator().RunUntil(cluster.simulator().Now() + 8 * kSecond);
  EXPECT_GE(cluster.control_plane().stats().failures_detected, 1u);

  const auto& view = cluster.control_plane().view();
  for (const auto& [id, info] : view.vnodes) {
    EXPECT_NE(info.owner_node, 2u);
  }
  // Data still served by the survivors.
  workload::YcsbConfig wc;
  wc.num_keys = 200;
  wc.value_size = 128;
  workload::YcsbGenerator gen(wc);
  int ok = 0, total = 0;
  for (uint64_t i = 0; i < 200; i += 9) {
    ++total;
    std::vector<uint8_t> out;
    Status st = ClusterGet(cluster, workload::YcsbGenerator::KeyName(i), &out);
    if (st.ok() && out == gen.MakeValue(i)) ++ok;
  }
  EXPECT_EQ(ok, total);
}

TEST(IntegrationTest, RunHarnessProducesThroughputAndEnergy) {
  ClusterSim cluster(SmallLeedCluster());
  cluster.Bootstrap();
  cluster.Preload(500, 256);

  workload::YcsbConfig wc;
  wc.mix = workload::Mix::kB;
  wc.num_keys = 500;
  wc.value_size = 256;
  workload::YcsbGenerator gen(wc);

  ClusterSim::DriveOptions opt;
  opt.concurrency_per_client = 16;
  opt.warmup = 20 * kMillisecond;
  opt.duration = 100 * kMillisecond;
  RunResult r = cluster.Run(gen, opt);

  EXPECT_GT(r.completed, 100u);
  EXPECT_GT(r.throughput_qps, 1000.0);
  EXPECT_GT(r.latency_us.count(), 0u);
  EXPECT_GT(r.latency_us.Mean(), 0.0);
  // 3 polling Stingray nodes: 3 x 52.5 W.
  EXPECT_NEAR(r.cluster_power_w, 157.5, 1.0);
  EXPECT_GT(r.queries_per_joule, 0.0);
  EXPECT_EQ(r.errors, 0u);
}

TEST(IntegrationTest, TimelineBucketsCoverRun) {
  ClusterSim cluster(SmallLeedCluster());
  cluster.Bootstrap();
  cluster.Preload(200, 128);
  workload::YcsbConfig wc;
  wc.mix = workload::Mix::kB;
  wc.num_keys = 200;
  wc.value_size = 128;
  workload::YcsbGenerator gen(wc);

  ClusterSim::DriveOptions opt;
  opt.concurrency_per_client = 8;
  opt.warmup = 10 * kMillisecond;
  opt.duration = 100 * kMillisecond;
  opt.timeline_bucket = 20 * kMillisecond;
  RunResult r = cluster.Run(gen, opt);
  EXPECT_GE(r.timeline.size(), 4u);
  for (auto& [t, qps] : r.timeline) {
    EXPECT_GE(t, 0.0);
    EXPECT_GT(qps, 0.0);
  }
}

}  // namespace
}  // namespace leed
