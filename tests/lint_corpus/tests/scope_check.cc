// lint_test fixture — rules scoped to src/ must NOT fire under tests/:
// rand() here is fine (test seeding), and unordered containers are fine
// (tests may hash freely). banned-func still applies everywhere.
#include <cstdlib>
#include <unordered_map>

namespace fixture {

int TestOnlyRandomness() {
  std::unordered_map<int, int> counts;  // no unordered-iter outside src/
  counts[rand()] = 1;                   // no determinism rule outside scope
  return static_cast<int>(counts.size());
}

}  // namespace fixture
