// lint_test fixture — header without #pragma once (line-1 finding).
#ifndef FIXTURE_NO_PRAGMA_H_
#define FIXTURE_NO_PRAGMA_H_

namespace fixture {
inline int Answer() { return 42; }
}  // namespace fixture

#endif  // FIXTURE_NO_PRAGMA_H_
