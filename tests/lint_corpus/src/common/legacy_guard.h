// leed-lint: allow(pragma-once): fixture proves pragma-once suppression
#ifndef FIXTURE_LEGACY_GUARD_H_
#define FIXTURE_LEGACY_GUARD_H_

namespace fixture {
inline int Legacy() { return 1; }
}  // namespace fixture

#endif  // FIXTURE_LEGACY_GUARD_H_
