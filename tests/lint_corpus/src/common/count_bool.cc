// Corpus for count-in-bool-context: member count() with an argument used
// as a boolean must fire; explicit comparisons, zero-arg count() and
// suppressed sites must not.
#include <map>

namespace fixture {

struct Hist { long count() const { return 0; } };

bool Fires(const std::map<int, int>& m, int k, bool ok) {
  if (m.count(k)) return true;
  if (!m.count(k)) return false;
  const int* p = m.count(k) ? &m.at(k) : nullptr;
  bool b = ok && m.count(k);
  return p != nullptr && b;
}

bool Silent(const std::map<int, int>& m, int k, const Hist& h) {
  if (m.count(k) != 0) return true;
  if (h.count() > 0) return true;
  long n = m.count(k);
  // leed-lint: allow(count-in-bool-context): corpus suppression exercise
  if (m.count(k)) return true;
  return n == 0;
}

}  // namespace fixture
