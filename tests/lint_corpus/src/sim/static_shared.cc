// lint_test fixture — unannotated-sim-shared: mutable static state in sim
// scope is visible to every shard and every concurrently-running seed of a
// parallel sweep; it must be const, or carry LEED_SHARD_SHARED with a
// non-empty reason. Expected findings are asserted line-exactly by
// tests/lint_test.cc; KEEP LINE NUMBERS STABLE or update the golden table.
#include "common/shard_annotations.h"

namespace fixture {

static long g_event_count = 0;        // line 10: fire — namespace static
static const int kTableSize = 128;    // ok: const
static constexpr double kRatio = 0.5; // ok: constexpr

long NextId() {
  static long counter = 0;  // line 15: fire — static local, process-wide
  return ++counter;
}

static long g_reviewed LEED_SHARD_SHARED(
    "fixture: merged at the window barrier, never read mid-window") = 0;

static long g_empty LEED_SHARD_SHARED("") = 0;  // line 22: fire — no reason

// leed-lint: allow(unannotated-sim-shared): fixture proves suppression
static long g_allowed = 0;

static long Helper() { return 1; }  // ok: function, not state

}  // namespace fixture
