// lint_test fixture — shard-affine-capture: a lambda handed to a
// cross-shard scheduler (Simulator::AtOnShard, ShardedRunner::Post) runs
// on the *target* shard, so touching LEED_SHARD_AFFINE state inside it is
// the classic wrong-shard mutation (a Node field access moved off its
// owner shard). Expected findings are asserted line-exactly by
// tests/lint_test.cc; KEEP LINE NUMBERS STABLE or update the golden table.
#include "common/shard_annotations.h"

namespace fixture {

class LEED_SHARD_AFFINE MiniNode {
 public:
  void WrongShardTouch(Sim& sim, unsigned other) {
    sim.AtOnShard(other, 10, [this] { applied_ += 1; });  // line 14: fire
  }
  long applied_ = 0;
};

struct Driver {
  std::vector<int> mailbox_ LEED_SHARD_AFFINE;
  Sim sim_;
  Runner runner_;

  void DerefViaDefaultCapture(unsigned shard) {
    sim_.AtOnShard(shard, 5, [&] { mailbox_.push_back(1); });  // line 25: fire
  }
  void NamedInitCapture(unsigned shard) {
    runner_.Post(0, shard, 7, [m = &mailbox_] { m->clear(); });  // line 28: fire
  }
  void SameShardSchedulerIsSilent() {
    sim_.At(3, [&] { mailbox_.clear(); });  // At inherits the shard: ok
  }
  void FreeFunctionPostIsSilent(unsigned shard) {
    Post(shard, [&] { mailbox_.clear(); });  // not the mailbox API: ok
  }
  void Reviewed(unsigned shard) {
    // LEED_CROSS_SHARD_OK: fixture — reviewed quiesced-state hand-off
    sim_.AtOnShard(shard, 9, [&] { mailbox_.clear(); });
  }

  void Allowed(unsigned shard) {
    // leed-lint: allow(shard-affine-capture): fixture proves suppression
    sim_.AtOnShard(shard, 11, [&] { mailbox_.clear(); });
  }
};

}  // namespace fixture
