// lint_test fixture — determinism violations inside the sim scope.
// Expected findings are asserted line-exactly by tests/lint_test.cc;
// KEEP LINE NUMBERS STABLE or update the golden table.
#include <chrono>
#include <cstdlib>
#include <ctime>

namespace fixture {

long Violations() {
  auto now = std::chrono::system_clock::now();              // line 11: type
  (void)now;
  auto tick = std::chrono::steady_clock::now();             // line 13: type
  (void)tick;
  long seed = std::time(nullptr);                           // line 15: call
  seed += rand();                                           // line 16: call
  std::srand(42);                                           // line 17: call
  return seed;
}

// leed-lint: allow(determinism): fixture proves suppression works
long Suppressed() { return std::time(nullptr); }

struct Clock {
  long time() const { return 0; }
};

long NotViolations(const Clock& c) {
  long timestamp = c.time();   // member call, not libc time()
  return timestamp + Clock().time();
}

}  // namespace fixture
