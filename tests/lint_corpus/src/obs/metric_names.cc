// lint_test fixture — metric-name convention. Line numbers are asserted
// by tests/lint_test.cc; keep them stable.
#include <string>

namespace fixture {

struct Registry {
  int* GetCounter(const std::string&) { return nullptr; }
  int* GetGauge(const std::string&) { return nullptr; }
  int* GetHistogram(const std::string&) { return nullptr; }
  Registry Sub(const std::string&) { return {}; }
};

void Violations(Registry& r) {
  r.GetCounter("Bad Name");           // line 15: uppercase + space
  r.GetGauge("engine.Queue_depth");   // line 16: uppercase segment
  r.GetHistogram("svc..latency_us");  // line 17: empty segment
  r.Sub("Node0");                     // line 18: uppercase
  // leed-lint: allow(metric-name): fixture proves suppression works
  r.GetCounter("LegacyImport");
}

void NotViolations(Registry& r, int i) {
  r.GetCounter("node0.engine.executed");
  r.GetGauge("cluster.throughput_qps");
  r.GetHistogram("ssd" + std::to_string(i) + ".read_us");
  r.Sub("engine");
  std::string dynamic = "node";
  r.GetCounter(dynamic);  // non-literal: out of scope for a token linter
}

}  // namespace fixture
