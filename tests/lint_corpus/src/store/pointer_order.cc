// lint_test fixture — pointer-order: ordered containers keyed by raw
// pointers and explicit pointer `<` comparisons order by allocation
// address, which differs run to run and breaks the replay gate. Expected
// findings are asserted line-exactly by tests/lint_test.cc; KEEP LINE
// NUMBERS STABLE or update the golden table.
#include <map>
#include <set>

namespace fixture {

struct Extent {
  int id;
};

struct Tracker {
  std::map<Extent*, int> by_addr_;   // line 16: fire — pointer key
  std::set<const Extent*> live_;     // line 17: fire — pointer key
  std::map<int, Extent*> by_id_;     // ok: pointer is the mapped value
  std::set<int> ids_;                // ok

  // leed-lint: allow(pointer-order): fixture proves suppression works
  std::map<Extent*, int> reviewed_;

  bool Before(Extent* a, Extent* b) const {
    return a < b;  // line 25: fire — address comparison
  }
  bool ById(Extent* a, Extent* b) const {
    return a->id < b->id;  // ok: compares members, not addresses
  }
  bool Mul(int x, int y) const { return x * y < 4; }  // ok: arithmetic
};

}  // namespace fixture
