// lint_test fixture — unordered-container rules. Line numbers are
// asserted by tests/lint_test.cc; keep them stable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

class SnapshotSource {
 public:
  std::vector<std::string> Emit() const {
    std::vector<std::string> out;
    for (const auto& [k, v] : hot_keys_) {  // line 18: unordered iteration
      out.push_back(k + ":" + std::to_string(v));
    }
    // leed-lint: allow(unordered-iter): fixture proves iteration suppression
    for (const auto& id : seen_) out.push_back(std::to_string(id));
    for (const auto& [k, v] : ordered_) out.push_back(k);  // std::map: fine
    return out;
  }

 private:
  std::unordered_map<std::string, uint64_t> hot_keys_;  // line 28: decl
  // leed-lint: allow(unordered-iter): fixture proves decl suppression
  std::unordered_set<uint64_t> seen_;
  std::map<std::string, int> ordered_;
};

}  // namespace fixture
