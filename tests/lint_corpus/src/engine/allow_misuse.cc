// lint_test fixture — annotation misuse. Line numbers are asserted by
// tests/lint_test.cc; keep them stable.

namespace fixture {

// leed-lint: allow(determinism): nothing below violates, so this is rot
int Clean() { return 7; }

// leed-lint: allow(not-a-rule): bogus rule name
int Unknown() { return 8; }

// leed-lint: allow(memcpy)
int MissingJustification() { return 9; }

// leed-lint: disable-all
int UnrecognizedDirective() { return 10; }

}  // namespace fixture
