// lint_test fixture — cross-shard-call: inside a ShardGuard region, direct
// method calls on LEED_SHARD_AFFINE objects must target the guarded shard
// (share an identifier with the guard's shard expression) or carry a
// reviewed LEED_CROSS_SHARD_OK marker. The affine declarations live in the
// companion header (guard_calls.h). Expected findings are asserted
// line-exactly by tests/lint_test.cc; KEEP LINE NUMBERS STABLE or update
// the golden table.
#include "cluster/guard_calls.h"

namespace fixture {

void MiniCluster::Bootstrap(int node_id) {
  Simulator::ShardGuard guard(sim_, NodeShard(node_id));
  nodes_[node_id]->Start();      // ok: object expression shares node_id
  cp_->RegisterNode(node_id);    // line 15: fire — cp_ is another shard's
  // LEED_CROSS_SHARD_OK: fixture — sequenced bootstrap wiring, pre-Run
  cp_->StartJoin(node_id);
  // leed-lint: allow(cross-shard-call): fixture proves suppression works
  cp_->ReviveNode(node_id);
}

void MiniCluster::Outside(int node_id) {
  cp_->RegisterNode(node_id);  // no ShardGuard in scope: silent
}

}  // namespace fixture
