// lint_test fixture (companion header) — declares the LEED_SHARD_AFFINE
// fields that guard_calls.cc's ShardGuard regions touch. The per-TU model
// must merge these declarations when linting the .cc, exactly as node.cc
// sees node.h's annotations on the real tree.
#pragma once

#include "common/shard_annotations.h"

namespace fixture {

class ControlPlane;
class Replica;

struct MiniCluster {
  void Bootstrap(int node_id);
  void Outside(int node_id);

  ControlPlane* cp_ LEED_SHARD_AFFINE;          // lives on shard 0
  std::vector<Replica*> nodes_ LEED_SHARD_AFFINE;  // element i on shard i+1
  Simulator sim_;
};

}  // namespace fixture
