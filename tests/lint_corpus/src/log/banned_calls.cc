// lint_test fixture — banned-func and memcpy rules. Line numbers are
// asserted by tests/lint_test.cc; keep them stable.
#include <cstdio>
#include <cstring>

namespace fixture {

void Violations(char* dst, const char* src, unsigned char* buf, int n) {
  std::strcpy(dst, src);                        // line 9: banned-func
  sprintf(dst, "%d", n);                        // line 10: banned-func
  std::memcpy(buf, src, static_cast<size_t>(n));  // line 11: memcpy
  std::memset(buf, 0, static_cast<size_t>(n));    // line 12: memcpy
}

void NotViolations(char* dst, const char* src, size_t cap, int n) {
  std::snprintf(dst, cap, "%s %d", src, n);  // snprintf is fine
}

// leed-lint: allow(memcpy): fixture proves suppression works
void Suppressed(void* dst, const void* src, size_t n) { memcpy(dst, src, n); }

// leed-lint: allow(banned-func): fixture proves suppression works
void SuppressedBanned(char* dst, const char* src) { strcpy(dst, src); }

struct Codec {
  void sprintf(int) {}  // member named like a banned function: fine
};

void MemberCall(Codec& c) { c.sprintf(1); }

}  // namespace fixture
