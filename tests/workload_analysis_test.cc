// Tests for the YCSB generator and the analysis module (balls-into-bins,
// index-memory arithmetic).

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "analysis/balls_into_bins.h"
#include "analysis/index_memory.h"
#include "common/units.h"
#include "sim/platform.h"
#include "workload/ycsb.h"

namespace leed {
namespace {

using workload::Mix;
using workload::OpKind;
using workload::YcsbConfig;
using workload::YcsbGenerator;

// ---------------------------------------------------------------------------
// YCSB
// ---------------------------------------------------------------------------

std::map<OpKind, int> SampleMix(Mix mix, int n = 40000) {
  YcsbConfig cfg;
  cfg.mix = mix;
  cfg.num_keys = 10000;
  cfg.seed = 5;
  YcsbGenerator gen(cfg);
  std::map<OpKind, int> counts;
  for (int i = 0; i < n; ++i) counts[gen.Next().kind]++;
  return counts;
}

TEST(YcsbTest, MixRatiosMatchSpec) {
  auto a = SampleMix(Mix::kA);
  EXPECT_NEAR(a[OpKind::kRead] / 40000.0, 0.50, 0.02);
  EXPECT_NEAR(a[OpKind::kUpdate] / 40000.0, 0.50, 0.02);

  auto b = SampleMix(Mix::kB);
  EXPECT_NEAR(b[OpKind::kRead] / 40000.0, 0.95, 0.01);

  auto c = SampleMix(Mix::kC);
  EXPECT_EQ(c[OpKind::kRead], 40000);

  auto d = SampleMix(Mix::kD);
  EXPECT_NEAR(d[OpKind::kInsert] / 40000.0, 0.05, 0.01);
  EXPECT_EQ(d[OpKind::kUpdate], 0);

  auto f = SampleMix(Mix::kF);
  EXPECT_NEAR(f[OpKind::kReadModifyWrite] / 40000.0, 0.50, 0.02);

  auto wr = SampleMix(Mix::kWriteOnly);
  EXPECT_EQ(wr[OpKind::kUpdate], 40000);
}

TEST(YcsbTest, ReadFractionsMatchMixes) {
  YcsbConfig cfg;
  cfg.mix = Mix::kB;
  EXPECT_DOUBLE_EQ(YcsbGenerator(cfg).ReadFraction(), 0.95);
  cfg.mix = Mix::kWriteOnly;
  EXPECT_DOUBLE_EQ(YcsbGenerator(cfg).ReadFraction(), 0.0);
}

TEST(YcsbTest, KeysStayInPopulation) {
  YcsbConfig cfg;
  cfg.mix = Mix::kA;
  cfg.num_keys = 500;
  YcsbGenerator gen(cfg);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(gen.Next().key_id, 500u);
}

TEST(YcsbTest, WorkloadDGrowsPopulationAndReadsRecent) {
  YcsbConfig cfg;
  cfg.mix = Mix::kD;
  cfg.num_keys = 1000;
  cfg.seed = 3;
  YcsbGenerator gen(cfg);
  uint64_t recent_reads = 0, total_reads = 0;
  for (int i = 0; i < 20000; ++i) {
    auto op = gen.Next();
    if (op.kind == OpKind::kInsert) {
      EXPECT_EQ(op.key_id, gen.population() - 1);  // fresh key
    } else {
      ++total_reads;
      if (op.key_id + 100 >= gen.population()) ++recent_reads;
    }
  }
  EXPECT_GT(gen.population(), 1000u);
  // "Latest" distribution: a large share of reads hit the newest 100 keys.
  EXPECT_GT(static_cast<double>(recent_reads) / total_reads, 0.3);
}

TEST(YcsbTest, ZipfSkewConcentratesRequests) {
  YcsbConfig hot;
  hot.mix = Mix::kC;
  hot.num_keys = 100000;
  hot.zipf_theta = 0.99;
  YcsbGenerator gen(hot);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[gen.Next().key_id]++;
  int max_count = 0;
  for (auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 500);  // ~> 1% of requests on the hottest key
}

TEST(YcsbTest, KeyNamesAndValuesDeterministic) {
  EXPECT_EQ(YcsbGenerator::KeyName(42), "user000000000042");
  YcsbConfig cfg;
  cfg.value_size = 256;
  YcsbGenerator gen(cfg);
  auto v1 = gen.MakeValue(7, 0);
  auto v2 = gen.MakeValue(7, 0);
  auto v3 = gen.MakeValue(7, 1);
  EXPECT_EQ(v1.size(), 256u);
  EXPECT_EQ(v1, v2);
  EXPECT_NE(v1, v3);
}

TEST(YcsbTest, MixNames) {
  EXPECT_STREQ(workload::MixName(Mix::kA), "YCSB-A");
  EXPECT_STREQ(workload::MixName(Mix::kWriteOnly), "YCSB-WR");
}

// ---------------------------------------------------------------------------
// Balls into bins (Table 1)
// ---------------------------------------------------------------------------

TEST(BallsIntoBinsTest, EstimateMatchesFormula) {
  auto e = analysis::EstimateMaxLoad(1e6, 100);
  EXPECT_DOUBLE_EQ(e.mean, 10000.0);
  EXPECT_GT(e.deviation, 0.0);
  EXPECT_NEAR(e.deviation, std::sqrt(2.0 * 1e6 * std::log(100.0) / 100.0), 1.0);
}

TEST(BallsIntoBinsTest, FewerBinsMeansLargerDeviationShare) {
  // Table 1's point: 3 JBOFs see a larger max-load overshoot than 100
  // embedded nodes, relative to the mean.
  auto embedded = analysis::EstimateMaxLoad(1e6, 100);
  auto jbof = analysis::EstimateMaxLoad(1e6, 3);
  EXPECT_GT(jbof.deviation / jbof.mean, embedded.deviation / embedded.mean * 0);
  EXPECT_GT(jbof.mean, embedded.mean);
  // Absolute deviation is much larger for the 3-node cluster.
  EXPECT_GT(jbof.deviation, embedded.deviation);
}

TEST(BallsIntoBinsTest, SimulationBracketedByEstimate) {
  Rng rng(17);
  double sim_max = analysis::SimulateMaxLoad(100000, 10, 20, rng);
  auto est = analysis::EstimateMaxLoad(100000, 10);
  EXPECT_GT(sim_max, est.mean);               // above the mean...
  EXPECT_LT(sim_max, est.mean + 2 * est.deviation);  // ...within the bound
}

// ---------------------------------------------------------------------------
// Index memory (Challenge C1 / Table 3 capacity)
// ---------------------------------------------------------------------------

TEST(IndexMemoryTest, FawnCappedByDram) {
  auto plat = sim::StingrayJbof();
  auto r = analysis::MaxCapacity(analysis::FawnIndexModel(), plat.dram_bytes,
                                 0.875, plat.TotalFlashBytes(), 256);
  // Paper Table 3: FAWN-JBOF reaches only ~7.7% of flash for 256B objects.
  EXPECT_GT(r.fraction_of_flash, 0.04);
  EXPECT_LT(r.fraction_of_flash, 0.12);
}

TEST(IndexMemoryTest, KvellCappedHarder) {
  auto plat = sim::StingrayJbof();
  auto r256 = analysis::MaxCapacity(analysis::KvellIndexModel(256), plat.dram_bytes,
                                    0.875, plat.TotalFlashBytes(), 256);
  auto r1k = analysis::MaxCapacity(analysis::KvellIndexModel(1024), plat.dram_bytes,
                                   0.875, plat.TotalFlashBytes(), 1024);
  // Paper: 0.9% / 2.6% of flash (33GB / 100GB).
  EXPECT_LT(r256.fraction_of_flash, 0.02);
  EXPECT_LT(r1k.fraction_of_flash, 0.05);
  EXPECT_GT(r1k.usable_bytes, r256.usable_bytes);
}

TEST(IndexMemoryTest, LeedUnlocksNearlyAllFlash) {
  auto plat = sim::StingrayJbof();
  auto model = analysis::LeedIndexModel(256, 4096, 16, 4);
  EXPECT_LT(model.bytes_per_object, 0.1);  // Challenge C1 target: << 0.5 B
  auto r = analysis::MaxCapacity(model, plat.dram_bytes, 0.875,
                                 plat.TotalFlashBytes(), 256);
  // Paper: 95.4% for 256B (flash-overhead-bound, not DRAM-bound).
  EXPECT_GT(r.fraction_of_flash, 0.85);
}

TEST(IndexMemoryTest, OrderingMatchesTable3) {
  auto plat = sim::StingrayJbof();
  for (uint32_t size : {256u, 1024u}) {
    auto fawn = analysis::MaxCapacity(analysis::FawnIndexModel(), plat.dram_bytes,
                                      0.875, plat.TotalFlashBytes(), size);
    auto kvell = analysis::MaxCapacity(analysis::KvellIndexModel(size),
                                       plat.dram_bytes, 0.875,
                                       plat.TotalFlashBytes(), size);
    auto leed = analysis::MaxCapacity(analysis::LeedIndexModel(size, 4096, 16, 4),
                                      plat.dram_bytes, 0.875,
                                      plat.TotalFlashBytes(), size);
    EXPECT_LT(kvell.fraction_of_flash, fawn.fraction_of_flash) << size;
    EXPECT_LT(fawn.fraction_of_flash, leed.fraction_of_flash) << size;
  }
}

}  // namespace
}  // namespace leed
