// Node-level protocol tests: hop-counter verification (NACKs on stale
// views), CRRS shipped-read mechanics, chain-write propagation and
// backward acks, and duplicate suppression — driven by hand-crafted wire
// messages against real Nodes.

#include <gtest/gtest.h>

#include <map>

#include "cluster/wire.h"
#include "leed/node.h"
#include "leed/wire.h"
#include "test_util.h"

namespace leed {
namespace {

class NodeProtocolTest : public ::testing::Test {
 protected:
  NodeProtocolTest() : net_(sim_) {
    cp_endpoint_ = net_.AddEndpoint(sim::NicSpec{});
    net_.SetReceiver(cp_endpoint_, [](sim::Message) {});  // sink heartbeats

    NodeConfig cfg;
    cfg.platform = sim::StingrayJbof();
    cfg.stack = StackKind::kLeed;
    cfg.crrs = true;
    cfg.engine.ssd_count = 1;
    cfg.engine.stores_per_ssd = 2;
    cfg.engine.ssd = sim::Dct983Spec();
    cfg.engine.ssd.capacity_bytes = 1ull << 30;
    cfg.engine.ssd.latency_jitter = 0;
    cfg.engine.ssd.slow_io_prob = 0;
    cfg.engine.store_template.num_segments = 256;
    cfg.engine.store_template.bucket_size = 512;

    for (uint32_t i = 0; i < 3; ++i) {
      nodes_.push_back(std::make_unique<Node>(sim_, net_, cp_endpoint_, cfg, i,
                                              100 + i));
      endpoints_[i] = nodes_[i]->endpoint();
      nodes_[i]->set_node_endpoints(&endpoints_);
    }
    // Client endpoint for responses.
    client_ep_ = net_.AddEndpoint(sim::NicSpec{});
    net_.SetReceiver(client_ep_, [this](sim::Message m) {
      if (auto* r = std::any_cast<ResponseMsg>(&m.payload)) {
        responses_.push_back(*r);
      }
    });

    // Hand every node the same 3-vnode view (one per node, R=3).
    view_.epoch = 1;
    view_.replication_factor = 3;
    for (uint32_t i = 0; i < 3; ++i) {
      view_.vnodes[i] = cluster::VNodeInfo{
          i, i, 0, static_cast<uint64_t>(i) * (UINT64_MAX / 3),
          cluster::VNodeState::kRunning};
    }
    DeliverView(view_);
  }

  void DeliverView(const cluster::ClusterView& v) {
    for (auto& [id, ep] : endpoints_) {
      net_.Send(cp_endpoint_, ep, 64, cluster::ViewUpdateMsg{v});
    }
    sim_.Run();
  }

  std::vector<cluster::VNodeId> ChainFor(const std::string& key) {
    return view_.ChainForKey(key);
  }

  void SendRequest(ClientRequestMsg msg, uint32_t to_node) {
    net_.Send(client_ep_, endpoints_[to_node], WireSize(msg), std::move(msg));
  }

  ResponseMsg WaitResponse() {
    size_t have = responses_.size();
    while (responses_.size() == have && sim_.events_pending() > 0 && sim_.Step()) {
    }
    EXPECT_GT(responses_.size(), have) << "no response arrived";
    return responses_.empty() ? ResponseMsg{} : responses_.back();
  }

  // Issue a full PUT through the chain and wait for the client response.
  StatusCode DoPut(const std::string& key, std::vector<uint8_t> value) {
    auto chain = ChainFor(key);
    ClientRequestMsg msg;
    msg.req_id = next_req_id_++;
    msg.op = engine::OpType::kPut;
    msg.key = key;
    msg.value = std::move(value);
    msg.vnode = chain[0];
    msg.hop = 0;
    msg.view_epoch = view_.epoch;
    msg.reply_to = client_ep_;
    SendRequest(std::move(msg), view_.Find(chain[0])->owner_node);
    return WaitResponse().code;
  }

  StatusCode DoGet(const std::string& key, int replica_index,
                   std::vector<uint8_t>* out = nullptr) {
    auto chain = ChainFor(key);
    ClientRequestMsg msg;
    msg.req_id = next_req_id_++;
    msg.op = engine::OpType::kGet;
    msg.key = key;
    msg.vnode = chain[replica_index];
    msg.hop = static_cast<uint8_t>(replica_index);
    msg.view_epoch = view_.epoch;
    msg.reply_to = client_ep_;
    SendRequest(std::move(msg), view_.Find(chain[replica_index])->owner_node);
    ResponseMsg r = WaitResponse();
    if (out) *out = r.value;
    return r.code;
  }

  sim::Simulator sim_;
  sim::Network net_;
  sim::EndpointId cp_endpoint_;
  sim::EndpointId client_ep_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<uint32_t, sim::EndpointId> endpoints_;
  cluster::ClusterView view_;
  std::vector<ResponseMsg> responses_;
  uint64_t next_req_id_ = 1;
};

TEST_F(NodeProtocolTest, WriteReplicatesThroughChainAndAcksBackward) {
  EXPECT_EQ(DoPut("alpha", testutil::TestValue(1, 64)), StatusCode::kOk);
  sim_.Run();  // let backward acks apply at head/mid
  auto chain = ChainFor("alpha");
  // Each chain member counted the traversing write; the tail committed.
  uint64_t commits = 0, writes = 0, acks = 0;
  for (auto& n : nodes_) {
    commits += n->stats().commits_as_tail;
    writes += n->stats().chain_writes;
    acks += n->stats().chain_acks;
  }
  EXPECT_EQ(commits, 1u);
  EXPECT_EQ(writes, 3u);  // head, mid, tail
  EXPECT_EQ(acks, 2u);    // tail->mid, mid->head
  // Every replica can serve the read now (CRRS, clean key).
  for (int i = 0; i < 3; ++i) {
    std::vector<uint8_t> out;
    EXPECT_EQ(DoGet("alpha", i, &out), StatusCode::kOk) << "replica " << i;
    EXPECT_EQ(out, testutil::TestValue(1, 64));
  }
}

TEST_F(NodeProtocolTest, WrongHopNacks) {
  auto chain = ChainFor("beta");
  ClientRequestMsg msg;
  msg.req_id = next_req_id_++;
  msg.op = engine::OpType::kPut;
  msg.key = "beta";
  msg.value = {1};
  msg.vnode = chain[1];  // mid node addressed as if it were the head
  msg.hop = 0;
  msg.reply_to = client_ep_;
  SendRequest(std::move(msg), view_.Find(chain[1])->owner_node);
  EXPECT_EQ(WaitResponse().code, StatusCode::kWrongView);
}

TEST_F(NodeProtocolTest, UnknownVnodeNacks) {
  ClientRequestMsg msg;
  msg.req_id = next_req_id_++;
  msg.op = engine::OpType::kGet;
  msg.key = "gamma";
  msg.vnode = 99;  // nobody owns this
  msg.hop = 0;
  msg.reply_to = client_ep_;
  SendRequest(std::move(msg), 0);
  EXPECT_EQ(WaitResponse().code, StatusCode::kWrongView);
}

TEST_F(NodeProtocolTest, GetAtWrongIndexNacks) {
  ASSERT_EQ(DoPut("delta", testutil::TestValue(2, 32)), StatusCode::kOk);
  auto chain = ChainFor("delta");
  ClientRequestMsg msg;
  msg.req_id = next_req_id_++;
  msg.op = engine::OpType::kGet;
  msg.key = "delta";
  msg.vnode = chain[2];
  msg.hop = 0;  // claims the tail is the head
  msg.reply_to = client_ep_;
  SendRequest(std::move(msg), view_.Find(chain[2])->owner_node);
  EXPECT_EQ(WaitResponse().code, StatusCode::kWrongView);
}

TEST_F(NodeProtocolTest, DirtyReadShipsToTail) {
  ASSERT_EQ(DoPut("eps", testutil::TestValue(3, 64)), StatusCode::kOk);
  sim_.Run();
  // Inject a chain write at the HEAD only (simulate an in-flight write by
  // not letting it propagate: pause the mid node).
  auto chain = ChainFor("eps");
  uint32_t mid_owner = view_.Find(chain[1])->owner_node;
  nodes_[mid_owner]->Fail();  // mid drops the forward -> head stays dirty

  ClientRequestMsg put;
  put.req_id = next_req_id_++;
  put.op = engine::OpType::kPut;
  put.key = "eps";
  put.value = testutil::TestValue(4, 64);
  put.vnode = chain[0];
  put.hop = 0;
  put.view_epoch = view_.epoch;
  put.reply_to = client_ep_;
  SendRequest(std::move(put), view_.Find(chain[0])->owner_node);
  sim_.RunUntil(sim_.Now() + 5 * kMillisecond);  // write stuck mid-chain

  // A GET at the (dirty) head must be shipped to the tail, which still has
  // the old committed value.
  uint64_t shipped_before = 0;
  for (auto& n : nodes_) shipped_before += n->stats().reads_shipped;
  std::vector<uint8_t> out;
  EXPECT_EQ(DoGet("eps", 0, &out), StatusCode::kOk);
  EXPECT_EQ(out, testutil::TestValue(3, 64));  // committed, not the stuck write
  uint64_t shipped_after = 0;
  for (auto& n : nodes_) shipped_after += n->stats().reads_shipped;
  EXPECT_EQ(shipped_after, shipped_before + 1);
}

TEST_F(NodeProtocolTest, DuplicateChainWriteIgnoredAfterCommit) {
  auto chain = ChainFor("zeta");
  uint32_t tail_owner = view_.Find(chain[2])->owner_node;
  ChainWriteMsg w;
  w.write_id = 0xabc123;
  w.key = "zeta";
  w.value = testutil::TestValue(5, 32);
  w.vnode = chain[2];
  w.hop = 2;
  w.reply_to = client_ep_;
  w.req_id = next_req_id_++;
  net_.Send(client_ep_, endpoints_[tail_owner], WireSize(w), w);
  (void)WaitResponse();
  uint64_t commits1 = nodes_[tail_owner]->stats().commits_as_tail;
  // Replay the identical write (re-forward after a view change).
  net_.Send(client_ep_, endpoints_[tail_owner], WireSize(w), w);
  sim_.Run();
  EXPECT_EQ(nodes_[tail_owner]->stats().commits_as_tail, commits1);
}

TEST_F(NodeProtocolTest, FailedNodeDropsEverything) {
  nodes_[0]->Fail();
  ClientRequestMsg msg;
  msg.req_id = next_req_id_++;
  msg.op = engine::OpType::kGet;
  msg.key = "any";
  msg.vnode = 0;
  msg.hop = 0;
  msg.reply_to = client_ep_;
  size_t before = responses_.size();
  SendRequest(std::move(msg), 0);
  sim_.Run();
  EXPECT_EQ(responses_.size(), before);  // silence, as fail-stop demands
}

TEST_F(NodeProtocolTest, PendingWriteCommitsOnTailPromotion) {
  // A write stuck mid-chain (successor dead) must commit when a view
  // change promotes the holder to tail — §3.8.2's penultimate-node rule.
  auto chain = ChainFor("omega");
  uint32_t mid_owner = view_.Find(chain[1])->owner_node;
  uint32_t tail_owner = view_.Find(chain[2])->owner_node;
  nodes_[tail_owner]->Fail();  // the write will never reach the tail

  ClientRequestMsg put;
  put.req_id = next_req_id_++;
  put.op = engine::OpType::kPut;
  put.key = "omega";
  put.value = testutil::TestValue(7, 64);
  put.vnode = chain[0];
  put.hop = 0;
  put.view_epoch = view_.epoch;
  put.reply_to = client_ep_;
  size_t responses_before = responses_.size();
  SendRequest(std::move(put), view_.Find(chain[0])->owner_node);
  sim_.RunUntil(sim_.Now() + 5 * kMillisecond);
  EXPECT_EQ(responses_.size(), responses_before);  // uncommitted: no reply

  // New view: the dead tail's vnode is gone; the mid node becomes tail.
  cluster::ClusterView v2 = view_;
  v2.epoch = 2;
  v2.vnodes.erase(chain[2]);
  DeliverView(v2);
  sim_.Run();

  // The promoted tail committed the buffered write and answered the client.
  ASSERT_GT(responses_.size(), responses_before);
  EXPECT_EQ(responses_.back().code, StatusCode::kOk);
  EXPECT_GT(nodes_[mid_owner]->stats().commits_as_tail, 0u);
  // And the value is durable at the promoted tail.
  view_ = v2;
  std::vector<uint8_t> out;
  EXPECT_EQ(DoGet("omega", static_cast<int>(ChainFor("omega").size()) - 1, &out),
            StatusCode::kOk);
  EXPECT_EQ(out, testutil::TestValue(7, 64));
}

TEST_F(NodeProtocolTest, StaleViewEpochIgnored) {
  cluster::ClusterView old = view_;
  old.epoch = 0;
  old.vnodes.clear();
  DeliverView(old);
  EXPECT_EQ(nodes_[0]->view().epoch, 1u);  // unchanged
  EXPECT_EQ(nodes_[0]->view().vnodes.size(), 3u);
}

}  // namespace
}  // namespace leed
