// Unit tests for the discrete-event substrate: event loop, SSD model,
// network model, CPU model, power model, platform presets.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/cpu_model.h"
#include "sim/network.h"
#include "sim/platform.h"
#include "sim/power.h"
#include "sim/simulator.h"
#include "sim/ssd_model.h"

namespace leed::sim {
namespace {

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.Schedule(30, [&] { order.push_back(3); });
  s.Schedule(10, [&] { order.push_back(1); });
  s.Schedule(20, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), 30);
}

TEST(SimulatorTest, SameInstantIsFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.Schedule(100, [&order, i] { order.push_back(i); });
  }
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator s;
  int fired = 0;
  s.Schedule(10, [&] {
    s.Schedule(5, [&] { fired++; });
  });
  s.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.Now(), 15);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator s;
  int fired = 0;
  EventId id = s.Schedule(10, [&] { fired++; });
  EXPECT_TRUE(s.Cancel(id));
  EXPECT_FALSE(s.Cancel(id));  // double cancel
  s.Run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, RunUntilAdvancesClockToDeadline) {
  Simulator s;
  int fired = 0;
  s.Schedule(100, [&] { fired++; });
  s.Schedule(300, [&] { fired++; });
  s.RunUntil(200);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.Now(), 200);
  s.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, PastEventsClampToNow) {
  Simulator s;
  s.Schedule(50, [] {});
  s.Run();
  int fired = 0;
  s.At(10, [&] { fired++; });  // in the past
  s.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.Now(), 50);
}

TEST(SimulatorTest, PeriodicTimerTicksAndStops) {
  Simulator s;
  int ticks = 0;
  PeriodicTimer timer(s, 10, [&] { ticks++; });
  timer.Start();
  s.RunUntil(55);
  EXPECT_EQ(ticks, 5);
  timer.Stop();
  s.RunUntil(200);
  EXPECT_EQ(ticks, 5);
}

TEST(SimulatorTest, PendingCountTracksLiveEvents) {
  Simulator s;
  EventId a = s.Schedule(10, [] {});
  s.Schedule(20, [] {});
  EXPECT_EQ(s.events_pending(), 2u);
  s.Cancel(a);  // leaves the live count immediately: it will never run
  EXPECT_EQ(s.events_pending(), 1u);
  s.Run();
  EXPECT_EQ(s.events_pending(), 0u);
  EXPECT_EQ(s.events_executed(), 1u);
}

// Regression: Cancel used to accept the id of an event that had already
// fired (it only checked id < next_seq_), report success, and leak a
// tombstone into an unordered_set that nothing ever erased. The generation
// scheme makes the stale id unmatchable and recycles the slot.
TEST(SimulatorTest, CancelAfterFireReturnsFalseWithoutStateGrowth) {
  Simulator s;
  int fired = 0;
  EventId id = s.Schedule(5, [&] { fired++; });
  s.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(s.Cancel(id));  // already ran: must not report success
  // Repeated fire-then-cancel churn must not grow any internal state: the
  // single slot is recycled every round.
  for (int i = 0; i < 1000; ++i) {
    EventId e = s.Schedule(1, [] {});
    s.Run();
    EXPECT_FALSE(s.Cancel(e));
  }
  EXPECT_EQ(s.slab_size(), 1u);
}

// Regression companion: a stale id must never cancel the event that reused
// its slot.
TEST(SimulatorTest, StaleIdCannotCancelSlotReuser) {
  Simulator s;
  EventId a = s.Schedule(5, [] {});
  s.Run();  // slot released, generation bumped
  int fired = 0;
  EventId b = s.Schedule(5, [&] { fired++; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(s.Cancel(a));  // stale id aims at b's slot but wrong gen
  s.Run();
  EXPECT_EQ(fired, 1);  // b survived
}

TEST(SimulatorTest, DaemonEventsDoNotKeepRunAlive) {
  Simulator s;
  int real = 0, daemon_ticks = 0;
  // A self-rearming daemon (like a heartbeat timer).
  std::function<void()> tick = [&] {
    ++daemon_ticks;
    s.ScheduleDaemon(10, tick);
  };
  s.ScheduleDaemon(10, tick);
  s.Schedule(35, [&] { ++real; });
  s.Run();  // must terminate despite the immortal daemon
  EXPECT_EQ(real, 1);
  EXPECT_EQ(daemon_ticks, 3);  // t=10,20,30 executed before the last real event
  EXPECT_EQ(s.Now(), 35);
}

TEST(SimulatorTest, PeriodicTimerIsDaemon) {
  Simulator s;
  int ticks = 0;
  PeriodicTimer timer(s, 10, [&] { ticks++; });
  timer.Start();
  s.Schedule(25, [] {});
  s.Run();  // returns at t=25 even though the timer is still armed
  EXPECT_EQ(s.Now(), 25);
  EXPECT_EQ(ticks, 2);
}

// ---------------------------------------------------------------------------
// SSD model
// ---------------------------------------------------------------------------

class SsdTest : public ::testing::Test {
 protected:
  SsdSpec NoJitterSpec() {
    SsdSpec spec = Dct983Spec();
    spec.latency_jitter = 0.0;
    spec.slow_io_prob = 0.0;
    return spec;
  }
  Simulator sim_;
};

TEST_F(SsdTest, ReadReturnsWrittenBytes) {
  SimSsd ssd(sim_, NoJitterSpec(), 1);
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  bool wrote = false, read = false;
  IoRequest w;
  w.type = IoType::kWrite;
  w.offset = 8192;
  w.data = payload;
  ASSERT_TRUE(ssd.Submit(std::move(w), [&](IoResult r) {
                    EXPECT_TRUE(r.status.ok());
                    wrote = true;
                  })
                  .ok());
  sim_.Run();
  ASSERT_TRUE(wrote);

  IoRequest r;
  r.type = IoType::kRead;
  r.offset = 8192;
  r.length = 5;
  ASSERT_TRUE(ssd.Submit(std::move(r), [&](IoResult res) {
                    EXPECT_TRUE(res.status.ok());
                    EXPECT_EQ(res.data, payload);
                    read = true;
                  })
                  .ok());
  sim_.Run();
  EXPECT_TRUE(read);
}

TEST_F(SsdTest, OutOfRangeRejected) {
  SimSsd ssd(sim_, NoJitterSpec(), 1);
  IoRequest r;
  r.type = IoType::kRead;
  r.offset = ssd.capacity_bytes() - 10;
  r.length = 100;
  EXPECT_FALSE(ssd.Submit(std::move(r), [](IoResult) { FAIL(); }).ok());
  IoRequest z;
  z.type = IoType::kRead;
  z.offset = 0;
  z.length = 0;
  EXPECT_FALSE(ssd.Submit(std::move(z), [](IoResult) { FAIL(); }).ok());
}

TEST_F(SsdTest, ReadLatencyNearBaseAtLowQd) {
  SimSsd ssd(sim_, NoJitterSpec(), 1);
  SimTime latency = 0;
  IoRequest r;
  r.type = IoType::kRead;
  r.offset = 0;
  r.length = 4096;
  ssd.Submit(std::move(r), [&](IoResult res) { latency = res.Latency(); });
  sim_.Run();
  EXPECT_EQ(latency, NoJitterSpec().read_base_ns);
}

TEST_F(SsdTest, RandomReadThroughputMatchesChannels) {
  // 20 channels at 50us => 400K IOPS. Submit 4000 4KB reads at t=0; the
  // last completion should land near 4000/400K = 10ms.
  SimSsd ssd(sim_, NoJitterSpec(), 1);
  int done = 0;
  for (int i = 0; i < 4000; ++i) {
    IoRequest r;
    r.type = IoType::kRead;
    r.offset = static_cast<uint64_t>(i) * 4096;
    r.length = 4096;
    ssd.Submit(std::move(r), [&](IoResult) { ++done; });
  }
  SimTime end = sim_.Run();
  EXPECT_EQ(done, 4000);
  EXPECT_NEAR(ToMillis(end), 10.0, 0.5);
}

TEST_F(SsdTest, SequentialWriteIsBandwidthBound) {
  // 1 MB sequential writes at 1.05 GB/s: 100 of them ~ 95 ms.
  SimSsd ssd(sim_, NoJitterSpec(), 1);
  int done = 0;
  for (int i = 0; i < 100; ++i) {
    IoRequest w;
    w.type = IoType::kWrite;
    w.pattern = IoPattern::kSequential;
    w.offset = static_cast<uint64_t>(i) * (1 << 20);
    w.data = std::vector<uint8_t>(1 << 20, 0xab);
    ssd.Submit(std::move(w), [&](IoResult) { ++done; });
  }
  SimTime end = sim_.Run();
  EXPECT_EQ(done, 100);
  EXPECT_NEAR(ToMillis(end), 100.0 / 1.05, 5.0);
}

TEST_F(SsdTest, RandomWritesPayProgramPenalty) {
  // Random 4KB writes: occupancy 4096*6.5/1.05 ~ 25.3us each => ~39.5K IOPS.
  SimSsd ssd(sim_, NoJitterSpec(), 1);
  int done = 0;
  for (int i = 0; i < 1000; ++i) {
    IoRequest w;
    w.type = IoType::kWrite;
    w.pattern = IoPattern::kRandom;
    w.offset = static_cast<uint64_t>(i) * 4096;
    w.data = std::vector<uint8_t>(4096, 1);
    ssd.Submit(std::move(w), [&](IoResult) { ++done; });
  }
  SimTime end = sim_.Run();
  EXPECT_EQ(done, 1000);
  double iops = 1000.0 / ToSeconds(end);
  EXPECT_NEAR(iops, ssd.spec().NominalRandomWriteIops(), 4000);
}

TEST_F(SsdTest, QueueingRaisesLatencyUnderOverload) {
  SimSsd ssd(sim_, NoJitterSpec(), 1);
  std::vector<SimTime> latencies;
  for (int i = 0; i < 64; ++i) {
    IoRequest r;
    r.type = IoType::kRead;
    r.offset = static_cast<uint64_t>(i) * 4096;
    r.length = 4096;
    ssd.Submit(std::move(r), [&](IoResult res) { latencies.push_back(res.Latency()); });
  }
  sim_.Run();
  ASSERT_EQ(latencies.size(), 64u);
  // First 20 are served directly; the rest queue behind them.
  EXPECT_LE(latencies.front(), 50 * kMicrosecond);
  EXPECT_GT(latencies.back(), 100 * kMicrosecond);
}

TEST_F(SsdTest, StatsAccumulate) {
  SimSsd ssd(sim_, NoJitterSpec(), 1);
  IoRequest w;
  w.type = IoType::kWrite;
  w.pattern = IoPattern::kSequential;
  w.offset = 0;
  w.data = std::vector<uint8_t>(512, 1);
  ssd.Submit(std::move(w), [](IoResult) {});
  IoRequest r;
  r.type = IoType::kRead;
  r.offset = 0;
  r.length = 512;
  ssd.Submit(std::move(r), [](IoResult) {});
  sim_.Run();
  EXPECT_EQ(ssd.stats().reads, 1u);
  EXPECT_EQ(ssd.stats().writes, 1u);
  EXPECT_EQ(ssd.stats().read_bytes, 512u);
  EXPECT_EQ(ssd.stats().write_bytes, 512u);
  EXPECT_EQ(ssd.inflight(), 0u);
}

TEST_F(SsdTest, JitterProducesLatencySpread) {
  SsdSpec spec = Dct983Spec();  // jitter enabled
  SimSsd ssd(sim_, spec, 99);
  std::set<SimTime> latencies;
  for (int i = 0; i < 64; ++i) {
    IoRequest r;
    r.type = IoType::kRead;
    r.offset = static_cast<uint64_t>(i) * 4096;
    r.length = 512;
    ssd.Submit(std::move(r), [&](IoResult res) { latencies.insert(res.Latency()); });
    sim_.Run();
  }
  EXPECT_GT(latencies.size(), 32u);  // almost all distinct
}

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

TEST(NetworkTest, DeliversPayloadWithLatency) {
  Simulator s;
  Network net(s);
  NicSpec nic;  // 100GbE, 2us base
  EndpointId a = net.AddEndpoint(nic);
  EndpointId b = net.AddEndpoint(nic);
  SimTime delivered_at = -1;
  int payload_out = 0;
  net.SetReceiver(b, [&](Message m) {
    delivered_at = s.Now();
    payload_out = std::any_cast<int>(m.payload);
  });
  ASSERT_TRUE(net.Send(a, b, 1500, 7).ok());
  s.Run();
  EXPECT_EQ(payload_out, 7);
  // 1500B / 12.5 B/ns = 120ns tx + 2us base + 120ns rx.
  EXPECT_NEAR(static_cast<double>(delivered_at), 2240, 50);
}

TEST(NetworkTest, UnknownEndpointRejected) {
  Simulator s;
  Network net(s);
  EndpointId a = net.AddEndpoint(NicSpec{});
  EXPECT_FALSE(net.Send(a, 99, 100, 0).ok());
}

TEST(NetworkTest, MissingReceiverCountsDrop) {
  Simulator s;
  Network net(s);
  EndpointId a = net.AddEndpoint(NicSpec{});
  EndpointId b = net.AddEndpoint(NicSpec{});
  net.Send(a, b, 100, 1);
  s.Run();
  EXPECT_EQ(net.dropped_messages(), 1u);
}

TEST(NetworkTest, IngressSerializationCreatesIncast) {
  Simulator s;
  Network net(s);
  NicSpec slow;
  slow.bandwidth_bpns = GbpsToBytesPerNs(1.0);  // 1 Gb/s receiver
  slow.base_latency_ns = 1000;
  EndpointId dst = net.AddEndpoint(slow);
  std::vector<EndpointId> sources;
  for (int i = 0; i < 8; ++i) sources.push_back(net.AddEndpoint(NicSpec{}));
  std::vector<SimTime> arrivals;
  net.SetReceiver(dst, [&](Message) { arrivals.push_back(s.Now()); });
  // 8 concurrent 125KB sends: each takes 1ms on the 1Gb/s ingress pipe, so
  // they arrive spaced ~1ms apart.
  for (auto src : sources) net.Send(src, dst, 125000, 0);
  s.Run();
  ASSERT_EQ(arrivals.size(), 8u);
  EXPECT_GT(arrivals.back() - arrivals.front(), 6 * kMillisecond);
  EXPECT_GT(net.stats(dst).bytes_received, 8u * 125000 - 1);
}

TEST(NetworkTest, StatsCountMessages) {
  Simulator s;
  Network net(s);
  EndpointId a = net.AddEndpoint(NicSpec{});
  EndpointId b = net.AddEndpoint(NicSpec{});
  net.SetReceiver(b, [](Message) {});
  net.Send(a, b, 64, 0);
  net.Send(a, b, 64, 0);
  s.Run();
  EXPECT_EQ(net.stats(a).messages_sent, 2u);
  EXPECT_EQ(net.stats(b).messages_received, 2u);
}

// ---------------------------------------------------------------------------
// CPU model
// ---------------------------------------------------------------------------

TEST(CpuTest, ChargesSerially) {
  Simulator s;
  CpuCore core(s, 2.0);  // 2 GHz: 1000 cycles = 500ns
  std::vector<SimTime> completions;
  core.Run(1000, [&] { completions.push_back(s.Now()); });
  core.Run(1000, [&] { completions.push_back(s.Now()); });
  s.Run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0], 500);
  EXPECT_EQ(completions[1], 1000);  // queued behind the first
}

TEST(CpuTest, UtilizationTracksBusyTime) {
  Simulator s;
  CpuCore core(s, 1.0);
  core.Run(500, [] {});
  s.Run();
  s.RunUntil(1000);
  EXPECT_NEAR(core.Utilization(1000), 0.5, 1e-9);
}

TEST(CpuTest, ModelAveragesAcrossCores) {
  Simulator s;
  CpuModel cpu(s, 4, 1.0);
  cpu.core(0).Charge(1000);
  s.RunUntil(1000);
  EXPECT_NEAR(cpu.MeanUtilization(1000), 0.25, 1e-9);
}

// ---------------------------------------------------------------------------
// Power model and platforms
// ---------------------------------------------------------------------------

TEST(PowerTest, PollingDrawsActiveAlways) {
  PowerSpec polling{45.0, 52.5, true};
  EXPECT_DOUBLE_EQ(NodePowerWatts(polling, 0.0), 52.5);
  EXPECT_DOUBLE_EQ(NodePowerWatts(polling, 1.0), 52.5);
}

TEST(PowerTest, InterruptScalesWithUtilization) {
  PowerSpec pi{3.6, 4.2, false};
  EXPECT_DOUBLE_EQ(NodePowerWatts(pi, 0.0), 3.6);
  EXPECT_NEAR(NodePowerWatts(pi, 0.5), 3.9, 1e-9);
  EXPECT_DOUBLE_EQ(NodePowerWatts(pi, 1.0), 4.2);
}

TEST(PowerTest, EnergyIntegratesOverWindow) {
  PowerSpec polling{45.0, 52.5, true};
  EXPECT_NEAR(NodeEnergyJoules(polling, 0.7, 2 * kSecond), 105.0, 1e-6);
  EXPECT_NEAR(RequestsPerJoule(1050, 105.0), 10.0, 1e-9);
  EXPECT_EQ(RequestsPerJoule(100, 0.0), 0.0);
}

TEST(PlatformTest, PresetsMatchPaperFigures) {
  PlatformSpec stingray = StingrayJbof();
  EXPECT_EQ(stingray.cores, 8u);
  EXPECT_DOUBLE_EQ(stingray.power.active_w, 52.5);
  EXPECT_EQ(stingray.ssd_count, 4u);
  // Storage skew ~ 4*960GB / 8GiB ~ 447 (Table 1 magnitude: hundreds+).
  EXPECT_GT(stingray.StorageSkew(), 300.0);
  // Network density: 100Gb / 8 cores = 12.5 Gb per core (Table 1).
  EXPECT_NEAR(stingray.NetworkDensityGbps(), 12.5, 0.1);
  // Storage density: 1.6M IOPS / 8 cores = 200K per core.
  EXPECT_NEAR(stingray.StorageDensityIops(), 200000, 1000);

  PlatformSpec pi = RaspberryPiNode();
  EXPECT_LT(pi.StorageSkew(), 64.0);
  EXPECT_LT(pi.NetworkDensityGbps(), 1.0);
  EXPECT_LT(pi.power.active_w, 5.0);

  PlatformSpec server = ServerJbof();
  EXPECT_GT(server.power.active_w, 200.0);
  EXPECT_GT(server.cores, stingray.cores);
}

TEST(PlatformTest, SkewOrderingAcrossPlatforms) {
  // Table 1 row 1: embedded < server < SmartNIC for flash:DRAM skew.
  EXPECT_LT(RaspberryPiNode().StorageSkew(), ServerJbof().StorageSkew());
  EXPECT_LT(ServerJbof().StorageSkew(), StingrayJbof().StorageSkew());
}

TEST(PlatformTest, ComputeDensityOrdering) {
  // Table 1 rows 2-3: the SmartNIC JBOF has the highest per-core IO burden.
  EXPECT_LT(RaspberryPiNode().NetworkDensityGbps(),
            StingrayJbof().NetworkDensityGbps());
  EXPECT_LT(ServerJbof().StorageDensityIops(),
            StingrayJbof().StorageDensityIops());
}

}  // namespace
}  // namespace leed::sim
