// Multi-threaded stress tests for the pieces of the tree that carry a
// cross-thread contract: SpscRing (single producer / single consumer),
// TokenPool (internally synchronized), the obs Registry's cold paths
// (registration / lookup / snapshot under a lock, instruments
// single-writer), and the ShardedRunner's ownership-not-locks mailboxes.
//
// These tests are the workload behind the TSan CI job (LEED_SANITIZE=thread,
// Debug build): TSan proves the atomics/locks are sufficient, and the Debug
// build additionally arms SpscRing's role-pinning asserts. They also run in
// the plain build where they act as ordinary correctness stress tests.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/rand.h"
#include "engine/spsc_ring.h"
#include "engine/token_bucket.h"
#include "obs/metrics.h"
#include "sim/shard.h"

namespace leed {
namespace {

// ---------------------------------------------------------------------------
// SpscRing: one producer thread, one consumer thread, every element arrives
// exactly once and in order.
// ---------------------------------------------------------------------------

TEST(SpscRingConcurrencyTest, SingleProducerSingleConsumerOrdered) {
  constexpr uint64_t kItems = 200000;
  engine::SpscRing<uint64_t> ring(1024);

  std::thread producer([&] {
    for (uint64_t i = 0; i < kItems;) {
      if (ring.TryPush(uint64_t{i})) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });

  uint64_t expected = 0;
  uint64_t sum = 0;
  while (expected < kItems) {
    if (auto v = ring.TryPop()) {
      ASSERT_EQ(*v, expected) << "ring reordered or duplicated an element";
      sum += *v;
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();

  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
  EXPECT_TRUE(ring.Empty());
}

TEST(SpscRingConcurrencyTest, FrontAndPopShareTheConsumerRole) {
  engine::SpscRing<int> ring(4);
  ASSERT_TRUE(ring.TryPush(7));
  // Front and TryPop from the same thread is the supported consumer
  // pattern; the debug role-pinning must accept one thread playing both
  // endpoint roles.
  ASSERT_NE(ring.Front(), nullptr);
  EXPECT_EQ(*ring.Front(), 7);
  auto v = ring.TryPop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

// ---------------------------------------------------------------------------
// TokenPool: hammer TryTake/Refund/OnIoCompleted from several threads; the
// pool must never report more in-use tokens than its capacity bound allows
// and must end balanced once every taker refunds.
// ---------------------------------------------------------------------------

TEST(TokenPoolConcurrencyTest, TakeRefundRescaleFromManyThreads) {
  engine::TokenConfig cfg;
  cfg.base_tokens = 64;
  cfg.min_tokens = 8;
  cfg.max_tokens = 128;
  engine::TokenPool pool(cfg);

  constexpr int kThreads = 4;
  constexpr int kIterations = 20000;
  std::atomic<uint64_t> takes{0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const uint32_t cost = 2 + static_cast<uint32_t>((t + i) % 3);
        if (pool.TryTake(cost)) {
          takes.fetch_add(1, std::memory_order_relaxed);
          // Feed latencies that oscillate around the reference so Rescale
          // runs both the shrink and grow paths while tokens are in flight.
          const SimTime latency =
              (i % 2 == 0 ? 40 : 90) * kMicrosecond;
          pool.OnIoCompleted(latency);
          pool.Refund(cost);
        }
        const uint32_t cap = pool.capacity();
        EXPECT_GE(cap, cfg.min_tokens);
        EXPECT_LE(cap, cfg.max_tokens);
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_GT(takes.load(), 0u);
  // Every take was refunded, so the pool must be back to full.
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.available(), pool.capacity());
}

// ---------------------------------------------------------------------------
// Registry: concurrent registration of distinct and identical names, each
// thread incrementing only the counters it owns (instruments are
// single-writer by contract; the *registry* paths are what is shared).
// ---------------------------------------------------------------------------

TEST(RegistryConcurrencyTest, ConcurrentRegistrationAndSnapshot) {
  obs::Registry registry;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  constexpr uint64_t kIncrements = 1000;

  // Phase 1 — the registry's synchronized cold paths: threads race to
  // register distinct and identical names while also snapshotting (map
  // mutation vs. map iteration). No instrument is written in this phase:
  // instruments are single-writer by contract, and a snapshot may not
  // run concurrently with a writer.
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // A shared name: all threads race to register it, exactly one
      // instrument must result.
      (void)registry.GetGauge("stress.shared");
      for (int i = 0; i < kPerThread; ++i) {
        (void)registry.GetCounter(
            "stress.t" + std::to_string(t) + ".c" + std::to_string(i));
        if (i % 16 == 0) {
          const std::string snap = registry.SnapshotJson();
          EXPECT_FALSE(snap.empty());
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  workers.clear();

  // Phase 2 — hot path: each thread increments only the counters it
  // owns; lookups of other threads' registrations run concurrently.
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::Counter* c = registry.GetCounter(
            "stress.t" + std::to_string(t) + ".c" + std::to_string(i));
        for (uint64_t n = 0; n < kIncrements; ++n) c->Inc();
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(registry.size(),
            static_cast<size_t>(kThreads * kPerThread) + 1);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      obs::Counter* c = registry.GetCounter(
          "stress.t" + std::to_string(t) + ".c" + std::to_string(i));
      EXPECT_EQ(c->value(), kIncrements);
    }
  }
}

// ---------------------------------------------------------------------------
// ShardedRunner mailboxes: the (src, dst) slots are lock-free by ownership
// (shard src's worker writes during a window, the driver drains at the
// barrier), and the per-shard heaps are churned by cancellation — every
// firing schedules decoy events and immediately cancels some of them,
// punching generation-slot holes into the heap the cross-shard merge then
// inserts into. TSan must see the TaskPool round handoff as the
// happens-before edge for all of it; the plain build checks the outcome is
// byte-identical to the jobs=1 serial oracle.
// ---------------------------------------------------------------------------

namespace shardchurn {

struct ChurnShard {
  sim::ShardedRunner* runner = nullptr;
  std::vector<ChurnShard>* all = nullptr;
  uint32_t shard = 0;
  uint32_t remaining = 0;
  Rng rng{0};
  uint64_t fired = 0;         // own chain events that ran
  uint64_t received = 0;      // cross-shard deliveries that ran
  uint64_t decoys_fired = 0;  // decoys that escaped cancellation
  uint64_t cancelled = 0;     // decoys cancelled before firing

  void Arm() {
    sim::Simulator& sim = runner->shard(shard);
    sim.Schedule(static_cast<SimTime>(1 + rng.NextBounded(40)),
                 [this] { Fire(); });
  }

  void Fire() {
    sim::Simulator& sim = runner->shard(shard);
    ++fired;
    // Cancel holes: schedule a burst of decoys, then cancel a seeded
    // subset. The survivors interleave with the mailbox deliveries the
    // driver merges in at the barrier, so insertion lands in a heap full
    // of stale generation slots.
    sim::EventId decoys[4];
    for (sim::EventId& id : decoys) {
      id = sim.Schedule(static_cast<SimTime>(1 + rng.NextBounded(64)),
                        [this] { ++decoys_fired; });
    }
    for (sim::EventId id : decoys) {
      if (rng.NextBounded(2) == 0 && sim.Cancel(id)) ++cancelled;
    }
    // Every firing posts to the next shard; offsets straddle the
    // lookahead so some clamp to the window end and some land later.
    const uint32_t dst = (shard + 1) % runner->num_shards();
    ChurnShard* target = &(*all)[dst];
    const SimTime off = 5 + static_cast<SimTime>(rng.NextBounded(96));
    runner->Post(shard, dst, sim.Now() + off,
                 [target] { ++target->received; });
    if (--remaining > 0) Arm();
  }
};

struct ChurnOutcome {
  std::vector<std::vector<uint64_t>> per_shard;  // [shard] = counters
  uint64_t windows = 0;
  uint64_t posts = 0;
  uint64_t events = 0;
  SimTime end = 0;

  bool operator==(const ChurnOutcome& o) const {
    return per_shard == o.per_shard && windows == o.windows &&
           posts == o.posts && events == o.events && end == o.end;
  }
};

ChurnOutcome RunChurn(uint32_t jobs, uint64_t seed) {
  constexpr uint32_t kShards = 4;
  sim::ShardedRunner runner(kShards, /*lookahead=*/40, jobs);
  // Fixed size up front: callbacks capture element addresses.
  std::vector<ChurnShard> shards(kShards);
  for (uint32_t s = 0; s < kShards; ++s) {
    shards[s].runner = &runner;
    shards[s].all = &shards;
    shards[s].shard = s;
    shards[s].remaining = 300;
    shards[s].rng.Seed(seed + s);
    shards[s].Arm();
  }
  ChurnOutcome out;
  out.end = runner.Run();
  out.windows = runner.windows();
  out.posts = runner.posts_delivered();
  out.events = runner.events_executed();
  for (const ChurnShard& s : shards) {
    out.per_shard.push_back(
        {s.fired, s.received, s.decoys_fired, s.cancelled});
  }
  return out;
}

}  // namespace shardchurn

TEST(ShardedRunnerConcurrencyTest, MailboxChurnUnderCancelHoles) {
  const uint64_t seed = 0x5ca1ab1e;
  const shardchurn::ChurnOutcome serial = shardchurn::RunChurn(1, seed);

  // The workload exercised what it claims to: chains completed, posts
  // crossed shards, and the cancel pass both fired and killed decoys.
  uint64_t fired = 0, received = 0, survived = 0, cancelled = 0;
  for (const auto& counters : serial.per_shard) {
    fired += counters[0];
    received += counters[1];
    survived += counters[2];
    cancelled += counters[3];
  }
  EXPECT_EQ(fired, 4u * 300u);
  EXPECT_EQ(received, fired);  // every firing posted exactly once
  EXPECT_GT(survived, 0u);
  EXPECT_GT(cancelled, 0u);
  EXPECT_EQ(survived + cancelled, 4u * fired);

  // Parallel runs (worker threads writing the mailboxes while the heaps
  // are full of cancel holes) must match the serial oracle exactly.
  for (uint32_t jobs : {2u, 4u}) {
    const shardchurn::ChurnOutcome par = shardchurn::RunChurn(jobs, seed);
    EXPECT_TRUE(par == serial) << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace leed
