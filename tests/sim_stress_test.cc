// Stress tests for the event-loop core's generation-slot scheme:
// interleaved Schedule/Cancel/daemon churn asserting events_pending()
// invariants, FIFO tie-breaking, slab-growth bounds, and id-reuse safety.
//
// Companion to tests/concurrency_test.cc: the simulator is single-threaded
// by contract, so the hazards here are not data races but lifetime races —
// slots recycled while stale heap entries are still queued, the slab
// relocating mid-dispatch, cancels aimed at ids whose slot was reused.
// Runs under the ASan/UBSan and TSan CI jobs like every other test, where
// a use-after-free in the slab or callable storage is a hard failure.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/rand.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace leed::sim {
namespace {

// Random interleaving of Schedule / Cancel / Step against a shadow model.
// Each scheduled callback erases its own record when it fires, so the model
// tracks exactly which events are live: events_pending() and every Cancel()
// return value is checkable after every action.
TEST(SimStressTest, ScheduleCancelChurnAgainstShadowModel) {
  Simulator s;
  Rng rng(testutil::TestSeed(0xbeef));

  struct Rec {
    EventId id = 0;
    bool daemon = false;
  };
  std::map<EventId, bool> live;    // id -> daemon
  std::vector<EventId> fired_ids;  // ids whose events already ran
  size_t peak_live = 0;

  auto model_pending = [&live] {
    uint64_t n = 0;
    for (const auto& [id, daemon] : live) n += daemon ? 0 : 1;
    return n;
  };

  for (int round = 0; round < 20000; ++round) {
    const uint64_t action = rng.NextBounded(10);
    if (action < 4) {
      // Schedule a live event (sometimes a daemon) that retires itself.
      auto rec = std::make_shared<Rec>();
      rec->daemon = rng.NextBounded(4) == 0;
      const SimTime delay = static_cast<SimTime>(rng.NextBounded(50));
      auto fire = [&live, &fired_ids, rec] {
        fired_ids.push_back(rec->id);
        ASSERT_EQ(live.erase(rec->id), 1u);
      };
      const EventId id = rec->daemon ? s.ScheduleDaemon(delay, std::move(fire))
                                     : s.Schedule(delay, std::move(fire));
      ASSERT_NE(id, 0u);
      ASSERT_FALSE(live.contains(id)) << "EventId reused while still live";
      rec->id = id;
      live[id] = rec->daemon;
    } else if (action < 6 && !live.empty()) {
      // Cancel a random live event: must succeed exactly once.
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.NextBounded(live.size())));
      const EventId id = it->first;
      live.erase(it);
      EXPECT_TRUE(s.Cancel(id));
      EXPECT_FALSE(s.Cancel(id)) << "double cancel must fail";
    } else if (action < 7 && !fired_ids.empty()) {
      // Cancel an id that already ran: must always fail. (The old loop
      // reported success here and leaked a tombstone per call; under
      // generations the fired event's slot bumped its generation, so the
      // stale id can never match — even if the slot was reused.)
      const EventId stale = fired_ids[rng.NextBounded(fired_ids.size())];
      EXPECT_FALSE(s.Cancel(stale));
    } else {
      // Fire at most one event; its callback removes it from the model.
      s.Step();
    }
    peak_live = std::max(peak_live, live.size());
    ASSERT_EQ(s.events_pending(), model_pending()) << "round " << round;
    // The slab recycles slots through the free list: it can never exceed
    // the peak number of simultaneously live events (no tombstone growth).
    ASSERT_LE(s.slab_size(), peak_live) << "round " << round;
  }

  // Drain: the model must empty exactly when the simulator does.
  s.Run();
  while (s.Step()) {  // flush remaining daemon events
  }
  EXPECT_TRUE(live.empty());
  EXPECT_EQ(s.events_pending(), 0u);
}

// Same-instant events fire in schedule order, even across cancels that
// punch holes into the batch and force slot reuse between rounds.
TEST(SimStressTest, FifoTieBreakSurvivesCancelHoles) {
  Simulator s;
  Rng rng(testutil::TestSeed(0x7a57e));
  for (int round = 0; round < 200; ++round) {
    std::vector<int> order;
    std::vector<EventId> batch;
    const SimTime when = s.Now() + 10;
    for (int i = 0; i < 32; ++i) {
      batch.push_back(s.At(when, [&order, i] { order.push_back(i); }));
    }
    std::set<int> cancelled;
    for (int i = 0; i < 8; ++i) {
      const int victim = static_cast<int>(rng.NextBounded(32));
      if (cancelled.insert(victim).second) {
        EXPECT_TRUE(s.Cancel(batch[static_cast<size_t>(victim)]));
      }
    }
    s.Run();
    // Survivors fired in schedule order with the cancelled ones absent.
    std::vector<int> expected;
    for (int i = 0; i < 32; ++i) {
      if (!cancelled.contains(i)) expected.push_back(i);
    }
    ASSERT_EQ(order, expected) << "round " << round;
  }
}

// Deterministic replay: the same seed drives the same interleaving to the
// same execution trace — the §8 guarantee at the event-loop level, under
// cancellation churn (cancellation only removes work; it never reorders).
TEST(SimStressTest, ChurnReplaysIdentically) {
  auto run_once = [](uint64_t seed) {
    Simulator s;
    Rng rng(seed);
    std::vector<std::pair<SimTime, int>> trace;
    std::vector<EventId> pending;
    for (int i = 0; i < 5000; ++i) {
      const uint64_t action = rng.NextBounded(4);
      if (action < 2) {
        const int tag = i;
        pending.push_back(
            s.Schedule(static_cast<SimTime>(rng.NextBounded(30)),
                       [&trace, &s, tag] { trace.emplace_back(s.Now(), tag); }));
      } else if (action == 2 && !pending.empty()) {
        const size_t idx =
            static_cast<size_t>(rng.NextBounded(pending.size()));
        s.Cancel(pending[idx]);
        pending.erase(pending.begin() + static_cast<long>(idx));
      } else {
        s.Step();
      }
    }
    s.Run();
    return trace;
  };
  const auto a = run_once(0x5eed);
  const auto b = run_once(0x5eed);
  EXPECT_EQ(a, b);
  const auto c = run_once(0x0dd);
  EXPECT_NE(a, c);  // the seed must actually steer the interleaving
}

// Daemon timer churn: start/stop cycles must not leak pending counts or
// let a stopped timer tick, and the timer's internal Cancel/re-Arm cycle
// must stay correct across slot reuse.
TEST(SimStressTest, DaemonTimerChurn) {
  Simulator s;
  Rng rng(testutil::TestSeed(0xdae));
  int ticks = 0;
  PeriodicTimer timer(s, 7, [&ticks] { ++ticks; });
  for (int round = 0; round < 500; ++round) {
    if (rng.NextBounded(2) == 0) {
      timer.Start();
    } else {
      timer.Stop();
    }
    const bool running = timer.running();
    const int before = ticks;
    s.Schedule(20, [] {});  // keeps Run() alive for ~3 timer periods
    s.Run();
    if (running) {
      EXPECT_GT(ticks, before) << "armed timer failed to tick";
    } else {
      EXPECT_EQ(ticks, before) << "stopped timer ticked";
    }
  }
  timer.Stop();
  EXPECT_EQ(s.events_pending(), 0u);
}

// Slab reuse under sustained load: schedule a batch, cancel half, run the
// rest, repeat. The slab must stay at the high-water mark instead of
// growing per round (the tombstone-leak regression, at scale), and the
// cancelled half must never execute.
TEST(SimStressTest, SlabStaysAtHighWaterMark) {
  Simulator s;
  constexpr size_t kBatch = 512;
  uint64_t fired = 0;
  for (int round = 0; round < 50; ++round) {
    std::vector<EventId> ids;
    ids.reserve(kBatch);
    for (size_t i = 0; i < kBatch; ++i) {
      ids.push_back(
          s.Schedule(static_cast<SimTime>(i % 17), [&fired] { ++fired; }));
    }
    for (size_t i = 0; i < kBatch; i += 2) EXPECT_TRUE(s.Cancel(ids[i]));
    s.Run();
    EXPECT_LE(s.slab_size(), kBatch);
    EXPECT_EQ(s.events_pending(), 0u);
  }
  EXPECT_EQ(fired, 50u * kBatch / 2);
}

// ---------------------------------------------------------------------------
// Sharded mode (docs/PARALLEL_SIM.md): the k-way merge must reproduce the
// serial loop's (when, seq) dispatch order exactly, under the same churn
// the serial tests run.
// ---------------------------------------------------------------------------

// Seeded Schedule/AtOnShard/Cancel/Step churn, executed once on the plain
// single-queue loop (the oracle) and once per shard count. All draws use
// power-of-two bounds so the Rng stream is identical for every variant —
// only the shard assignment (a modulo of the same draw) differs.
TEST(SimStressTest, ShardedMergeMatchesSerialChurn) {
  auto run_once = [](uint64_t seed, uint32_t shards) {
    Simulator s;
    if (shards > 1) s.EnableSharding(shards, /*lookahead=*/100);
    Rng rng(seed);
    std::vector<std::pair<SimTime, int>> trace;
    std::vector<EventId> pending;
    for (int i = 0; i < 5000; ++i) {
      const uint64_t action = rng.NextBounded(8);
      const uint32_t shard =
          static_cast<uint32_t>(rng.NextBounded(64)) % shards;
      if (action < 3) {
        // Explicit-shard scheduling (the network-delivery path).
        const int tag = i;
        pending.push_back(s.AtOnShard(
            shard, s.Now() + static_cast<SimTime>(rng.NextBounded(32)),
            [&trace, &s, tag] { trace.emplace_back(s.Now(), tag); }));
      } else if (action == 3) {
        // Ambient-shard scheduling under a guard (the bootstrap path);
        // continuations inherit the running event's shard.
        Simulator::ShardGuard guard(s, shard);
        const int tag = 100000 + i;
        pending.push_back(
            s.Schedule(static_cast<SimTime>(rng.NextBounded(32)),
                       [&trace, &s, tag] { trace.emplace_back(s.Now(), tag); }));
      } else if (action == 4 && !pending.empty()) {
        const size_t idx =
            static_cast<size_t>(rng.NextBounded(64)) % pending.size();
        s.Cancel(pending[idx]);
        pending.erase(pending.begin() + static_cast<long>(idx));
      } else {
        s.Step();
      }
    }
    s.Run();
    return trace;
  };

  const uint64_t seed = testutil::TestSeed(0x54a2d);
  const auto serial = run_once(seed, 1);
  ASSERT_GT(serial.size(), 1000u);
  for (uint32_t shards : {2u, 4u, 7u}) {
    EXPECT_EQ(run_once(seed, shards), serial) << "shards=" << shards;
  }
}

// Same-instant events land in schedule order even when they sit on
// different shard heaps and cancels punch holes into the batch.
TEST(SimStressTest, ShardedSameInstantFifoAcrossShards) {
  Simulator s;
  s.EnableSharding(4, /*lookahead=*/10);
  Rng rng(testutil::TestSeed(0xf1f0));
  for (int round = 0; round < 50; ++round) {
    std::vector<int> order;
    std::vector<EventId> batch;
    const SimTime when = s.Now() + 10;
    for (int i = 0; i < 32; ++i) {
      batch.push_back(s.AtOnShard(static_cast<uint32_t>(i) % 4, when,
                                  [&order, i] { order.push_back(i); }));
    }
    std::set<int> cancelled;
    for (int i = 0; i < 8; ++i) {
      const int victim = static_cast<int>(rng.NextBounded(32));
      if (cancelled.insert(victim).second) {
        EXPECT_TRUE(s.Cancel(batch[static_cast<size_t>(victim)]));
      }
    }
    s.Run();
    std::vector<int> expected;
    for (int i = 0; i < 32; ++i) {
      if (!cancelled.contains(i)) expected.push_back(i);
    }
    ASSERT_EQ(order, expected) << "round " << round;
  }
}

// Horizon bookkeeping: a new round opens exactly when dispatch crosses the
// previous round's `first when + lookahead` — an event one tick inside the
// horizon shares the round, one at the horizon opens the next.
TEST(SimStressTest, ShardedRoundsAccountAtTheHorizonBoundary) {
  Simulator s;
  s.EnableSharding(2, /*lookahead=*/100);
  std::vector<SimTime> fired;
  s.AtOnShard(0, 10, [&] { fired.push_back(s.Now()); });
  s.AtOnShard(1, 109, [&] { fired.push_back(s.Now()); });  // 10+100-1: same round
  s.AtOnShard(0, 110, [&] { fired.push_back(s.Now()); });  // exactly 10+100: new round
  s.Run();
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 109, 110}));
  EXPECT_EQ(s.rounds_executed(), 2u);
}

// RunUntil in sharded mode: the deadline splits the pending set the same
// way the serial loop does, and the remainder still runs afterwards.
TEST(SimStressTest, ShardedRunUntilStopsAtDeadline) {
  Simulator s;
  s.EnableSharding(3, /*lookahead=*/50);
  std::vector<int> got;
  s.AtOnShard(0, 10, [&got] { got.push_back(1); });
  s.AtOnShard(1, 20, [&got] { got.push_back(2); });
  s.AtOnShard(2, 30, [&got] { got.push_back(3); });
  EXPECT_EQ(s.RunUntil(20), 2u);
  EXPECT_EQ(s.Now(), 20);
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
  s.Run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

// NextEventTime must skip cancelled heads in both modes and report the
// sentinel when nothing live remains.
TEST(SimStressTest, NextEventTimeCleansStaleHeads) {
  for (const bool sharded : {false, true}) {
    Simulator s;
    if (sharded) s.EnableSharding(2, /*lookahead=*/10);
    const EventId early = s.AtOnShard(0, 10, [] {});
    s.AtOnShard(1, 20, [] {});
    EXPECT_EQ(s.NextEventTime(), 10);
    EXPECT_TRUE(s.Cancel(early));
    EXPECT_EQ(s.NextEventTime(), 20) << "sharded=" << sharded;
    s.Run();
    EXPECT_EQ(s.NextEventTime(), Simulator::kNoPendingEvent);
  }
}

}  // namespace
}  // namespace leed::sim
