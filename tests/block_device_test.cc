// Edge-case tests for the functional block-device substrate: sparse page
// store semantics, zero-fill of never-written ranges, cross-page IOs, and
// the MemBlockDevice's async completion ordering.

#include <gtest/gtest.h>

#include "sim/block_device.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace leed::sim {
namespace {

TEST(PageStoreTest, UnwrittenReadsAreZero) {
  PageStore store(1 << 20, 4096);
  auto data = store.Read(12345, 100);
  ASSERT_EQ(data.size(), 100u);
  for (uint8_t b : data) EXPECT_EQ(b, 0);
  EXPECT_EQ(store.resident_pages(), 0u);
}

TEST(PageStoreTest, CrossPageWriteReadsBack) {
  PageStore store(1 << 20, 4096);
  // Write 6000 bytes starting 1000 bytes before a page boundary: spans
  // three pages.
  std::vector<uint8_t> payload(6000);
  for (size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<uint8_t>(i);
  store.Write(4096 - 1000, payload, payload.size());
  EXPECT_EQ(store.resident_pages(), 3u);
  auto out = store.Read(4096 - 1000, 6000);
  EXPECT_EQ(out, payload);
  // Neighboring bytes stay zero.
  EXPECT_EQ(store.Read(4096 - 1001, 1)[0], 0);
  EXPECT_EQ(store.Read(4096 - 1000 + 6000, 1)[0], 0);
}

TEST(PageStoreTest, ShortDataZeroFillsDeclaredLength) {
  PageStore store(1 << 20, 4096);
  std::vector<uint8_t> partial(10, 0xff);
  store.Write(0, partial, 100);  // declared length > data
  auto out = store.Read(0, 100);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], 0xff);
  for (int i = 10; i < 100; ++i) EXPECT_EQ(out[i], 0) << i;
}

TEST(PageStoreTest, RangeValidation) {
  PageStore store(1000, 512);
  EXPECT_TRUE(store.CheckRange(0, 1000).ok());
  EXPECT_FALSE(store.CheckRange(0, 1001).ok());
  EXPECT_FALSE(store.CheckRange(999, 2).ok());
  EXPECT_FALSE(store.CheckRange(0, 0).ok());
  // Overflow-safe.
  EXPECT_FALSE(store.CheckRange(UINT64_MAX - 1, 10).ok());
}

TEST(PageStoreTest, OverwriteReplacesBytes) {
  PageStore store(1 << 20, 512);
  store.Write(100, std::vector<uint8_t>(50, 1), 50);
  store.Write(120, std::vector<uint8_t>(10, 2), 10);
  auto out = store.Read(100, 50);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[20], 2);
  EXPECT_EQ(out[29], 2);
  EXPECT_EQ(out[30], 1);
}

TEST(MemBlockDeviceTest, CompletionIsAsynchronousButImmediate) {
  Simulator sim;
  MemBlockDevice dev(sim, 1 << 20);
  bool completed = false;
  IoRequest w;
  w.type = IoType::kWrite;
  w.offset = 0;
  w.data = {1, 2, 3};
  ASSERT_TRUE(dev.Submit(std::move(w), [&](IoResult r) {
                   EXPECT_TRUE(r.status.ok());
                   EXPECT_EQ(r.Latency(), 0);
                   completed = true;
                 })
                  .ok());
  // Not yet: completion is delivered through the event loop (program order
  // matters for the state machines even at zero latency).
  EXPECT_FALSE(completed);
  EXPECT_EQ(dev.inflight(), 1u);
  sim.Run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(dev.inflight(), 0u);
}

TEST(MemBlockDeviceTest, RejectsOutOfRange) {
  Simulator sim;
  MemBlockDevice dev(sim, 1024);
  IoRequest r;
  r.type = IoType::kRead;
  r.offset = 1000;
  r.length = 100;
  EXPECT_FALSE(dev.Submit(std::move(r), [](IoResult) { FAIL(); }).ok());
  EXPECT_EQ(dev.inflight(), 0u);
}

TEST(MemBlockDeviceTest, WriteThenReadSameEventLoopPass) {
  Simulator sim;
  MemBlockDevice dev(sim, 1 << 20);
  std::vector<uint8_t> got;
  IoRequest w;
  w.type = IoType::kWrite;
  w.offset = 512;
  w.data = testutil::TestValue(9, 64);
  dev.Submit(std::move(w), [&](IoResult) {
    IoRequest r;
    r.type = IoType::kRead;
    r.offset = 512;
    r.length = 64;
    dev.Submit(std::move(r), [&](IoResult res) { got = std::move(res.data); });
  });
  sim.Run();
  EXPECT_EQ(got, testutil::TestValue(9, 64));
}

}  // namespace
}  // namespace leed::sim
