// Tests for the host-bypass GET offload fast path (Scalio-style, see
// DESIGN.md §10): engine-level admission/punt behaviour of
// IoEngine::TrySubmitOffload, and cluster-level correctness with
// offload_enabled — index-hit reads are served with zero store-core
// cycles, everything ambiguous punts to the CPU path.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/io_engine.h"
#include "leed/cluster_sim.h"
#include "sim/cpu_model.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "workload/ycsb.h"

namespace leed {
namespace {

using engine::EngineConfig;
using engine::IoEngine;
using engine::OpType;
using engine::Request;
using engine::ResponseMeta;

class OffloadEngineTest : public ::testing::Test {
 protected:
  EngineConfig OffloadEngine(uint32_t ssds = 1) {
    EngineConfig cfg;
    cfg.ssd_count = ssds;
    cfg.stores_per_ssd = 2;
    cfg.ssd = sim::Dct983Spec();
    cfg.ssd.capacity_bytes = 1ull << 30;
    cfg.ssd.latency_jitter = 0;
    cfg.ssd.slow_io_prob = 0;
    cfg.store_template.num_segments = 256;
    cfg.store_template.bucket_size = 512;
    cfg.wait_queue_capacity = 64;
    cfg.offload_enabled = true;
    return cfg;
  }

  Status SyncOp(IoEngine& engine, OpType type, const std::string& key,
                std::vector<uint8_t> value, uint32_t store,
                std::vector<uint8_t>* out = nullptr) {
    Status result = Status::Internal("no callback");
    bool done = false;
    Request req;
    req.type = type;
    req.key = key;
    req.value = std::move(value);
    req.store_id = store;
    req.callback = [&](Status st, std::vector<uint8_t> v, ResponseMeta) {
      result = std::move(st);
      if (out) *out = std::move(v);
      done = true;
    };
    engine.Submit(std::move(req));
    testutil::RunUntilFlag(sim_, done);
    EXPECT_TRUE(done);
    return result;
  }

  Request MakeGet(const std::string& key, uint32_t store, bool* done,
                  Status* result, std::vector<uint8_t>* out = nullptr) {
    Request req;
    req.type = OpType::kGet;
    req.key = key;
    req.store_id = store;
    req.callback = [done, result, out](Status st, std::vector<uint8_t> v,
                                       ResponseMeta) {
      *result = std::move(st);
      if (out) *out = std::move(v);
      *done = true;
    };
    return req;
  }

  sim::Simulator sim_;
};

TEST_F(OffloadEngineTest, FastPathServesIndexHitWithoutCpuCycles) {
  sim::CpuModel cpu(sim_, 8, 3.0);
  IoEngine engine(sim_, cpu, OffloadEngine(), 1);
  auto value = testutil::TestValue(7, 256);
  ASSERT_TRUE(SyncOp(engine, OpType::kPut, "k1", value, 0).ok());

  // All of store 0's work runs on core 0 (the core statically mapped to
  // SSD 0). Nothing on the fast path may charge it.
  const SimTime busy_before = cpu.core(0).total_busy_ns();

  bool done = false;
  Status st = Status::Internal("pending");
  std::vector<uint8_t> out;
  Request req = MakeGet("k1", 0, &done, &st, &out);
  ASSERT_TRUE(engine.TrySubmitOffload(req));
  testutil::RunUntilFlag(sim_, done);

  ASSERT_TRUE(st.ok());
  EXPECT_EQ(out, value);
  EXPECT_EQ(cpu.core(0).total_busy_ns(), busy_before);
  EXPECT_EQ(engine.stats().offload_fast_hits, 1u);
  EXPECT_EQ(engine.stats().offload_slow_fallbacks, 0u);
  EXPECT_EQ(engine.data_store(0).stats().fast_gets, 1u);
  EXPECT_EQ(engine.data_store(0).stats().fast_get_aborts, 0u);
}

TEST_F(OffloadEngineTest, EmptyIndexPuntsAndChargesConsultation) {
  sim::CpuModel cpu(sim_, 8, 3.0);
  EngineConfig cfg = OffloadEngine();
  cfg.offload_index_consult_cycles = 300;
  IoEngine engine(sim_, cpu, cfg, 1);

  const SimTime busy_before = cpu.core(0).total_busy_ns();
  bool done = false;
  Status st = Status::Internal("pending");
  Request req = MakeGet("missing", 0, &done, &st);
  EXPECT_FALSE(engine.TrySubmitOffload(req));
  EXPECT_EQ(engine.stats().offload_slow_fallbacks, 1u);
  EXPECT_EQ(engine.stats().offload_fast_hits, 0u);
  // The punt burned exactly the index consultation on the owning core:
  // 300 cycles at 3 GHz = 100 ns.
  EXPECT_EQ(cpu.core(0).total_busy_ns() - busy_before, 100);

  // The request survives a punt intact: the CPU path still works.
  engine.Submit(std::move(req));
  testutil::RunUntilFlag(sim_, done);
  EXPECT_TRUE(st.IsNotFound());
}

TEST_F(OffloadEngineTest, MultiBucketChainPunts) {
  sim::CpuModel cpu(sim_, 8, 3.0);
  EngineConfig cfg = OffloadEngine();
  // One segment: every key shares one bucket chain; enough inserts
  // overflow the 512-byte head bucket and grow the chain past length 1.
  cfg.store_template.num_segments = 1;
  IoEngine engine(sim_, cpu, cfg, 1);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(SyncOp(engine, OpType::kPut,
                       workload::YcsbGenerator::KeyName(i),
                       testutil::TestValue(i, 64), 0)
                    .ok());
  }
  ASSERT_GT(engine.data_store(0).segments().At(0).chain_len, 1);

  bool done = false;
  Status st = Status::Internal("pending");
  Request req = MakeGet(workload::YcsbGenerator::KeyName(0), 0, &done, &st);
  EXPECT_FALSE(engine.TrySubmitOffload(req));
  EXPECT_EQ(engine.stats().offload_slow_fallbacks, 1u);
}

TEST_F(OffloadEngineTest, TokenExhaustionPuntsToSlowPath) {
  sim::CpuModel cpu(sim_, 8, 3.0);
  EngineConfig cfg = OffloadEngine();
  // Token admission still applies to offloaded reads (the counters live in
  // NIC hardware): pin the pool small enough for two concurrent GETs.
  cfg.tokens.base_tokens = 4;
  cfg.tokens.min_tokens = 4;
  cfg.tokens.max_tokens = 4;
  IoEngine engine(sim_, cpu, cfg, 1);
  ASSERT_TRUE(SyncOp(engine, OpType::kPut, "k", testutil::TestValue(1, 32), 0).ok());

  bool done[3] = {false, false, false};
  Status st[3] = {Status::Internal("a"), Status::Internal("b"),
                  Status::Internal("c")};
  Request r0 = MakeGet("k", 0, &done[0], &st[0]);
  Request r1 = MakeGet("k", 0, &done[1], &st[1]);
  Request r2 = MakeGet("k", 0, &done[2], &st[2]);
  EXPECT_TRUE(engine.TrySubmitOffload(r0));
  EXPECT_TRUE(engine.TrySubmitOffload(r1));
  EXPECT_FALSE(engine.TrySubmitOffload(r2));  // pool drained: punt
  EXPECT_EQ(engine.stats().offload_slow_fallbacks, 1u);

  sim_.Run();
  EXPECT_TRUE(done[0] && done[1]);
  EXPECT_TRUE(st[0].ok() && st[1].ok());

  // Completions refunded the tokens: the fast path admits again.
  EXPECT_TRUE(engine.TrySubmitOffload(r2));
  testutil::RunUntilFlag(sim_, done[2]);
  EXPECT_TRUE(st[2].ok());
}

// ---------------------------------------------------------------------------
// Cluster-level: offload_enabled end to end
// ---------------------------------------------------------------------------

ClusterConfig OffloadCluster() {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.num_clients = 1;
  cfg.node.platform = sim::StingrayJbof();
  cfg.node.stack = StackKind::kLeed;
  cfg.node.crrs = true;
  cfg.node.engine.offload_enabled = true;
  cfg.node.engine.ssd_count = 2;
  cfg.node.engine.stores_per_ssd = 2;
  cfg.node.engine.ssd = sim::Dct983Spec();
  cfg.node.engine.ssd.capacity_bytes = 1ull << 30;
  cfg.node.engine.ssd.latency_jitter = 0;
  cfg.node.engine.ssd.slow_io_prob = 0;
  cfg.node.engine.store_template.num_segments = 256;
  cfg.node.engine.store_template.bucket_size = 512;
  cfg.client.crrs_reads = true;
  cfg.client.stores_per_ssd = 2;
  cfg.control_plane.replication_factor = 3;
  return cfg;
}

TEST(OffloadClusterTest, ServesCorrectValuesViaFastPath) {
  ClusterSim cluster(OffloadCluster());
  cluster.Bootstrap();
  cluster.Preload(100, 128);
  workload::YcsbConfig wc;
  wc.num_keys = 100;
  wc.value_size = 128;
  workload::YcsbGenerator gen(wc);
  for (uint64_t i = 0; i < 100; i += 9) {
    bool done = false;
    cluster.client(0).Get(workload::YcsbGenerator::KeyName(i),
                          [&, i](Status st, std::vector<uint8_t> v, SimTime) {
                            EXPECT_TRUE(st.ok());
                            EXPECT_EQ(v, gen.MakeValue(i));
                            done = true;
                          });
    while (!done && cluster.simulator().events_pending() > 0 &&
           cluster.simulator().Step()) {
    }
    EXPECT_TRUE(done);
  }
  uint64_t offloaded = 0, fast_hits = 0;
  for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    offloaded += cluster.node(n).stats().offload_gets;
    fast_hits += cluster.node(n).leed_engine()->stats().offload_fast_hits;
  }
  // A quiet, preloaded cluster resolves every read on the fast path.
  EXPECT_GT(offloaded, 0u);
  EXPECT_EQ(offloaded, fast_hits);
}

TEST(OffloadClusterTest, DirtyReadsPuntToCpuPath) {
  ClusterSim cluster(OffloadCluster());
  cluster.Bootstrap();
  cluster.Preload(50, 128);

  // Interleave writes and reads of hot keys: reads landing on a dirty
  // CRRS replica must never take the fast path (they ship or park), while
  // clean reads still do.
  int outstanding = 0, read_errors = 0;
  auto& c = cluster.client(0);
  for (int round = 0; round < 30; ++round) {
    for (int k = 0; k < 8; ++k) {
      std::string key = workload::YcsbGenerator::KeyName(k);
      ++outstanding;
      c.Put(key, testutil::TestValue(round, 128), [&](Status st, SimTime) {
        EXPECT_TRUE(st.ok());
        --outstanding;
      });
      ++outstanding;
      c.Get(key, [&](Status st, std::vector<uint8_t>, SimTime) {
        if (!st.ok() && !st.IsNotFound()) ++read_errors;
        --outstanding;
      });
    }
  }
  cluster.simulator().Run();
  EXPECT_EQ(outstanding, 0);
  EXPECT_EQ(read_errors, 0);

  uint64_t served = 0, offloaded = 0;
  for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    served += cluster.node(n).stats().gets_served;
    offloaded += cluster.node(n).stats().offload_gets;
  }
  EXPECT_GT(offloaded, 0u);       // clean reads still fast-path
  EXPECT_LT(offloaded, served);   // dirty reads fell back
}

}  // namespace
}  // namespace leed
