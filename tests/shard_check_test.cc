// Unit tests for the debug-mode shard-access race detector
// (sim/shard_check.h). The ShardAccessChecker class is compiled in every
// build type — only the LEED_* macros are NDEBUG-gated — so these tests
// drive the class directly and run everywhere, including the release CI
// legs. The end-to-end macro path (hooks in Node/Client/IoEngine plus the
// --cross-shard-touch mutation) is exercised by the Debug nemesis smoke in
// CI, which must abort; here we pin down the checker's own contract:
// registration semantics, the first-violation latch, and the byte-stable
// report that smoke asserts on.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/trace.h"
#include "sim/shard_check.h"
#include "sim/simulator.h"

namespace leed {
namespace {

TEST(ShardAccessCheckerTest, AttachesAndDetachesFromSimulator) {
  sim::Simulator sim;
  EXPECT_EQ(sim.shard_checker(), nullptr);
  {
    sim::ShardAccessChecker checker(sim);
    EXPECT_EQ(sim.shard_checker(), &checker);
  }
  EXPECT_EQ(sim.shard_checker(), nullptr);
}

TEST(ShardAccessCheckerTest, OwnerShardAccessPasses) {
  sim::Simulator sim;
  sim.EnableSharding(4, /*lookahead=*/100);
  sim::ShardAccessChecker checker(sim);
  checker.set_fatal(false);

  int obj = 0;
  {
    sim::Simulator::ShardGuard guard(sim, 2);
    checker.RegisterOwner(&obj, "node2");
  }
  {
    sim::Simulator::ShardGuard guard(sim, 2);
    checker.CheckAccess(&obj, "Node::Dispatch");
  }
  EXPECT_EQ(checker.checks(), 1u);
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_FALSE(checker.violated());
  EXPECT_TRUE(checker.Report().empty());
}

TEST(ShardAccessCheckerTest, UnregisteredObjectsPass) {
  // Incremental adoption: hooks may fire on objects that never registered
  // (e.g. a subsystem not yet annotated). Those must never trip.
  sim::Simulator sim;
  sim.EnableSharding(2, /*lookahead=*/100);
  sim::ShardAccessChecker checker(sim);
  checker.set_fatal(false);

  int stranger = 0;
  sim::Simulator::ShardGuard guard(sim, 1);
  checker.CheckAccess(&stranger, "Node::Dispatch");
  EXPECT_EQ(checker.checks(), 1u);
  EXPECT_FALSE(checker.violated());
}

TEST(ShardAccessCheckerTest, WrongShardLatchesFirstViolationOnly) {
  sim::Simulator sim;
  sim.EnableSharding(4, /*lookahead=*/100);
  sim::ShardAccessChecker checker(sim);
  checker.set_fatal(false);

  int obj = 0;
  checker.RegisterOwner(&obj, "node0", /*shard=*/1);

  {
    sim::Simulator::ShardGuard guard(sim, 3);
    checker.CheckAccess(&obj, "Node::Dispatch");
  }
  ASSERT_TRUE(checker.violated());
  const std::string first = checker.Report();
  EXPECT_NE(first.find("=== shard-access violation ==="), std::string::npos);
  EXPECT_NE(first.find("object:          node0"), std::string::npos);
  EXPECT_NE(first.find("owner shard:     1"), std::string::npos);
  EXPECT_NE(first.find("actual shard:    3"), std::string::npos);
  EXPECT_NE(first.find("site:            Node::Dispatch"), std::string::npos);

  // A later violation from a different site counts but does not replace
  // the latched report: the first trip is the root cause, everything after
  // is fallout.
  {
    sim::Simulator::ShardGuard guard(sim, 2);
    checker.CheckAccess(&obj, "Node::DirectPut");
  }
  EXPECT_EQ(checker.violations(), 2u);
  EXPECT_EQ(checker.Report(), first);
}

TEST(ShardAccessCheckerTest, ReRegistrationMovesOwnershipAndUnregisterClears) {
  // A restarted node's replacement can legitimately land on the same
  // address; re-registration must overwrite, and unregistration must make
  // the address pass again (incremental adoption).
  sim::Simulator sim;
  sim.EnableSharding(4, /*lookahead=*/100);
  sim::ShardAccessChecker checker(sim);
  checker.set_fatal(false);

  int obj = 0;
  checker.RegisterOwner(&obj, "old", /*shard=*/1);
  checker.RegisterOwner(&obj, "new", /*shard=*/2);
  {
    sim::Simulator::ShardGuard guard(sim, 2);
    checker.CheckAccess(&obj, "Node::OnMessage");
  }
  EXPECT_FALSE(checker.violated());

  checker.Unregister(&obj);
  {
    sim::Simulator::ShardGuard guard(sim, 3);
    checker.CheckAccess(&obj, "Node::OnMessage");
  }
  EXPECT_FALSE(checker.violated());
}

// Run a fixed little simulation that ends in a violation and return the
// checker's report. Everything in the report is a function of the script —
// simulated clock, event count, shard ids, labels — never of host
// addresses, so two runs must produce byte-identical text.
std::string ViolationReportForScript() {
  sim::Simulator sim;
  sim.EnableSharding(4, /*lookahead=*/100);
  sim::ShardAccessChecker checker(sim);
  checker.set_fatal(false);

  int obj = 0;
  checker.RegisterOwner(&obj, "node1", /*shard=*/1);

  // Burn some deterministic clock and event count before tripping.
  for (SimTime t = 10; t <= 50; t += 10) {
    sim.At(t, [] {});
  }
  sim.At(60, [&sim, &checker, &obj] {
    sim::Simulator::ShardGuard guard(sim, 2);
    checker.CheckAccess(&obj, "Node::Dispatch");
  });
  sim.Run();
  return checker.Report();
}

TEST(ShardAccessCheckerTest, ReportIsByteStableAcrossRuns) {
  const std::string first = ViolationReportForScript();
  const std::string second = ViolationReportForScript();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The report carries the simulated clock and event count at the trip
  // point — the fields that make two different bugs distinguishable.
  EXPECT_NE(first.find("sim time (ns):   60"), std::string::npos) << first;
  EXPECT_NE(first.find("events executed: 6"), std::string::npos) << first;
  EXPECT_NE(first.find("==============================\n"), std::string::npos);
}

TEST(ShardAccessCheckerTest, ReportAppendsTraceTail) {
  sim::Simulator sim;
  sim.EnableSharding(2, /*lookahead=*/100);
  obs::TraceRing trace(16);
  trace.set_enabled(true);
  sim::ShardAccessChecker checker(sim);
  checker.set_fatal(false);
  checker.set_trace(&trace);

  // More events than the tail keeps: the report must show the last 8 and
  // say how many were recorded in total.
  for (uint64_t i = 0; i < 12; ++i) {
    trace.Record(obs::TraceEvent{/*t=*/static_cast<SimTime>(i * 10),
                                 obs::TraceKind::kOpBegin,
                                 /*node=*/0, /*unit=*/0, /*id=*/i, /*arg=*/0});
  }

  int obj = 0;
  checker.RegisterOwner(&obj, "node0", /*shard=*/0);
  {
    sim::Simulator::ShardGuard guard(sim, 1);
    checker.CheckAccess(&obj, "IoEngine::Submit");
  }
  ASSERT_TRUE(checker.violated());
  const std::string& report = checker.Report();
  EXPECT_NE(report.find("trace tail (last 8 of 12):"), std::string::npos)
      << report;
  // Oldest of the tail (id=4) is present, pre-tail events are not.
  EXPECT_NE(report.find("t=40 kind=op_begin"), std::string::npos) << report;
  EXPECT_EQ(report.find("t=30 "), std::string::npos) << report;
  // Newest event closes the tail.
  EXPECT_NE(report.find("t=110 kind=op_begin"), std::string::npos) << report;
}

}  // namespace
}  // namespace leed
